(* Unit tests of the hardware sanitizer: cross-block hazard detection,
   out-of-bounds diagnostics, queue discipline, and the disjoint-write
   annotation used by scatter kernels. *)

open Ascend

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let device () = Device.create ~sanitize:true ()

let san d =
  match Device.sanitizer d with
  | Some s -> s
  | None -> Alcotest.fail "sanitizer not armed"

(* Two blocks touch the same GM range in one phase, one of them
   writing, with no SyncAll in between: a read-write hazard. *)
let test_missing_syncall_rw_hazard () =
  let d = device () in
  let g = Device.alloc d Dtype.F16 64 ~name:"g" in
  let body ctx =
    let ub = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 64 in
    if Block.idx ctx = 0 then
      Mte.copy_out ctx ~engine:(Engine.Vec_mte_out 0) ~src:ub ~dst:g ~len:64 ()
    else
      Mte.copy_in ctx ~engine:(Engine.Vec_mte_in 0) ~src:g ~dst:ub ~len:64 ()
  in
  ignore (Launch.run d ~blocks:2 body);
  check_int "one RW hazard" 1
    (Sanitizer.count_kind (san d) Sanitizer.Read_write_hazard);
  match Sanitizer.diagnostics (san d) with
  | [ diag ] ->
      check_bool "names the tensor" true (diag.Sanitizer.tensor = "g");
      check_int "phase 0" 0 diag.Sanitizer.phase
  | _ -> Alcotest.fail "expected exactly one diagnostic"

(* The same access pattern split across two phases (write, SyncAll,
   read) is the legitimate idiom and stays clean. *)
let test_syncall_separates_phases () =
  let d = device () in
  let g = Device.alloc d Dtype.F16 64 ~name:"g" in
  let write ctx =
    if Block.idx ctx = 0 then begin
      let ub = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 64 in
      Mte.copy_out ctx ~engine:(Engine.Vec_mte_out 0) ~src:ub ~dst:g ~len:64 ()
    end
  in
  let read ctx =
    let ub = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 64 in
    Mte.copy_in ctx ~engine:(Engine.Vec_mte_in 0) ~src:g ~dst:ub ~len:64 ()
  in
  ignore (Launch.run_phases d ~blocks:2 [ write; read ]);
  check_int "clean" 0 (Sanitizer.count (san d))

let test_overlapping_writes_ww_hazard () =
  let d = device () in
  let g = Device.alloc d Dtype.F16 64 ~name:"g" in
  let body ctx =
    let ub = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 48 in
    let dst_off = Block.idx ctx * 16 in
    Mte.copy_out ctx ~engine:(Engine.Vec_mte_out 0) ~src:ub ~dst:g ~dst_off
      ~len:48 ()
  in
  ignore (Launch.run d ~blocks:2 body);
  check_int "one WW hazard" 1
    (Sanitizer.count_kind (san d) Sanitizer.Write_write_hazard)

(* Disjoint per-block tiles — the common partitioning — are clean. *)
let test_disjoint_tiles_clean () =
  let d = device () in
  let g = Device.alloc d Dtype.F16 64 ~name:"g" in
  let body ctx =
    let ub = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 32 in
    let dst_off = Block.idx ctx * 32 in
    Mte.copy_out ctx ~engine:(Engine.Vec_mte_out 0) ~src:ub ~dst:g ~dst_off
      ~len:32 ()
  in
  ignore (Launch.run d ~blocks:2 body);
  check_int "clean" 0 (Sanitizer.count (san d))

(* assume_disjoint_writes silences the conservative span analysis for
   scatter kernels that prove their offsets disjoint. *)
let test_disjoint_annotation () =
  let d = device () in
  let g = Device.alloc d Dtype.F16 64 ~name:"g" in
  let body ctx =
    Block.assume_disjoint_writes ctx g ~reason:"test scatter";
    let ub = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 48 in
    let dst_off = Block.idx ctx * 16 in
    Mte.copy_out ctx ~engine:(Engine.Vec_mte_out 0) ~src:ub ~dst:g ~dst_off
      ~len:48 ()
  in
  ignore (Launch.run d ~blocks:2 body);
  check_int "annotated scatter clean" 0 (Sanitizer.count (san d))

(* An OOB local-tensor access raises as before, and additionally leaves
   a structured diagnostic behind. *)
let test_oob_local_vec () =
  let d = device () in
  let raised = ref false in
  (try
     ignore
       (Launch.run d ~blocks:1 (fun ctx ->
            let ub = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 32 in
            Vec.adds ctx ~src:ub ~src_off:16 ~dst:ub ~scalar:1.0 ~len:32 ()))
   with Invalid_argument _ -> raised := true);
  check_bool "still raises" true !raised;
  check_int "diag recorded" 1
    (Sanitizer.count_kind (san d) Sanitizer.Out_of_bounds)

let test_oob_global_mte () =
  let d = device () in
  let g = Device.alloc d Dtype.F16 32 ~name:"g" in
  let raised = ref false in
  (try
     ignore
       (Launch.run d ~blocks:1 (fun ctx ->
            let ub = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 64 in
            Mte.copy_in ctx ~engine:(Engine.Vec_mte_in 0) ~src:g ~dst:ub
              ~len:64 ()))
   with Invalid_argument _ -> raised := true);
  check_bool "still raises" true !raised;
  check_int "diag recorded" 1
    (Sanitizer.count_kind (san d) Sanitizer.Out_of_bounds);
  match Sanitizer.diagnostics (san d) with
  | [ diag ] -> check_bool "names the tensor" true (diag.Sanitizer.tensor = "g")
  | _ -> Alcotest.fail "expected exactly one diagnostic"

(* AscendC queue discipline: enqueue past the buffer pool and dequeue
   of an empty queue are both violations. *)
let test_queue_discipline () =
  let s = Sanitizer.create () in
  let q = Sanitizer.Queue.make s ~block:0 ~name:"inQueue" ~depth:2 in
  Sanitizer.Queue.enqueue q;
  Sanitizer.Queue.enqueue q;
  check_int "two in flight" 2 (Sanitizer.Queue.in_flight q);
  Sanitizer.Queue.enqueue q;
  check_int "overflow flagged" 1
    (Sanitizer.count_kind s Sanitizer.Queue_violation);
  Sanitizer.Queue.dequeue q;
  Sanitizer.Queue.dequeue q;
  Sanitizer.Queue.dequeue q;
  check_int "double-dequeue flagged" 2
    (Sanitizer.count_kind s Sanitizer.Queue_violation);
  check_bool "depth < 1 rejected" true
    (try
       ignore (Sanitizer.Queue.make s ~block:0 ~name:"bad" ~depth:0);
       false
     with Invalid_argument _ -> true)

(* Real kernels pass: mcscan's two phases use disjoint per-block spans
   plus a read-only shared tail, and split's scatter is annotated. *)
let test_mcscan_clean () =
  let d = device () in
  let n = 30000 in
  let input = Array.init n (fun i -> if i mod 37 = 0 then 1.0 else 0.0) in
  let x = Device.of_array d Dtype.F16 ~name:"x" input in
  let y, _ = Scan.Mcscan.run d x in
  (match
     Scan.Scan_api.check_against_reference ~round:Fp16.round ~input ~output:y ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "mcscan wrong under sanitizer: %s" e);
  check_int "mcscan clean" 0 (Sanitizer.count (san d))

let test_split_clean () =
  let d = device () in
  let n = 20000 in
  let data = Array.init n (fun i -> float_of_int (i mod 13)) in
  let mask = Array.init n (fun i -> if i mod 3 = 0 then 1.0 else 0.0) in
  let x = Device.of_array d Dtype.F16 ~name:"x" data in
  let m = Device.of_array d Dtype.I8 ~name:"m" mask in
  let r = Ops.Split.run ~with_indices:true d ~x ~flags:m () in
  check_bool "split produced something" true (r.Ops.Split.true_count > 0);
  check_int "split clean" 0 (Sanitizer.count (san d))

let () =
  Alcotest.run "sanitizer"
    [
      ( "hazards",
        [
          Alcotest.test_case "missing SyncAll RW" `Quick
            test_missing_syncall_rw_hazard;
          Alcotest.test_case "SyncAll separates" `Quick
            test_syncall_separates_phases;
          Alcotest.test_case "overlapping WW" `Quick
            test_overlapping_writes_ww_hazard;
          Alcotest.test_case "disjoint tiles" `Quick test_disjoint_tiles_clean;
          Alcotest.test_case "scatter annotation" `Quick
            test_disjoint_annotation;
        ] );
      ( "oob",
        [
          Alcotest.test_case "local vec" `Quick test_oob_local_vec;
          Alcotest.test_case "global mte" `Quick test_oob_global_mte;
        ] );
      ( "queues",
        [ Alcotest.test_case "discipline" `Quick test_queue_discipline ] );
      ( "kernels",
        [
          Alcotest.test_case "mcscan clean" `Quick test_mcscan_clean;
          Alcotest.test_case "split clean" `Quick test_split_clean;
        ] );
    ]
