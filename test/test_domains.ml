(* Host-side domain-parallel execution tests.

   The contract under test: for ANY domain count, every kernel's output
   tensor and its whole simulated statistics record are bit-identical
   to the sequential schedule — parallelism may only change host
   wall-clock time. Stateful features (fault injection, kills,
   sanitizer) force the sequential path, so degraded runs are likewise
   unchanged by [~domains]. *)

open Ascend

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Domain_pool unit tests.                                            *)

let test_pool_coverage () =
  let p = Domain_pool.create ~max_workers:3 () in
  let n = 200 in
  let hits = Array.make n 0 in
  Domain_pool.parallel_for p ~slots:4 ~n (fun i -> hits.(i) <- hits.(i) + 1);
  Array.iteri
    (fun i h -> if h <> 1 then Alcotest.failf "index %d ran %d times" i h)
    hits;
  Domain_pool.shutdown p

let test_pool_sequential_when_one_slot () =
  let p = Domain_pool.create () in
  let out = Array.make 50 (-1) in
  Domain_pool.parallel_for p ~slots:1 ~n:50 (fun i -> out.(i) <- i);
  check_int "no workers spawned" 0 (Domain_pool.size p);
  check_bool "all indices ran" true (Array.for_all (fun v -> v >= 0) out);
  Domain_pool.shutdown p

let test_pool_reraises_smallest_index () =
  let p = Domain_pool.create ~max_workers:2 () in
  (match
     Domain_pool.parallel_for p ~slots:3 ~n:64 (fun i ->
         if i mod 10 = 7 then failwith (Printf.sprintf "boom %d" i))
   with
  | () -> Alcotest.fail "expected a re-raised body exception"
  | exception Failure msg ->
      (* Failing indices are 7, 17, 27, ...; a sequential left-to-right
         loop would have surfaced 7 first. *)
      Alcotest.(check string) "smallest failing index wins" "boom 7" msg);
  (* The pool survives a failed loop and runs the next one cleanly. *)
  let ok = Array.make 16 false in
  Domain_pool.parallel_for p ~slots:3 ~n:16 (fun i -> ok.(i) <- true);
  check_bool "pool reusable after failure" true (Array.for_all Fun.id ok);
  Domain_pool.shutdown p

let test_pool_nested_degrades () =
  let p = Domain_pool.create ~max_workers:2 () in
  let inner_total = Array.make 8 0 in
  Domain_pool.parallel_for p ~slots:3 ~n:8 (fun i ->
      (* A nested loop on the same pool must complete (sequentially)
         rather than deadlock on the busy workers. *)
      let acc = ref 0 in
      Domain_pool.parallel_for p ~slots:3 ~n:5 (fun j -> acc := !acc + j);
      inner_total.(i) <- !acc);
  Array.iteri
    (fun i t -> if t <> 10 then Alcotest.failf "nested loop %d summed %d" i t)
    inner_total;
  Domain_pool.shutdown p

let test_pool_shutdown_degrades () =
  let p = Domain_pool.create ~max_workers:2 () in
  Domain_pool.shutdown p;
  let out = Array.make 10 false in
  Domain_pool.parallel_for p ~slots:4 ~n:10 (fun i -> out.(i) <- true);
  check_bool "post-shutdown loop still completes" true
    (Array.for_all Fun.id out);
  check_int "no workers after shutdown" 0 (Domain_pool.size p)

(* ------------------------------------------------------------------ *)
(* Determinism across domain counts.                                  *)

let scan_input = Array.init 120000 (fun i -> if i mod 53 = 0 then 1.0 else 0.0)

let flags_input =
  Array.init 120000 (fun i -> if (i * 7) mod 13 < 2 then 1.0 else 0.0)

let tensor_bits y n = Array.init n (fun i -> Global_tensor.get y i)

(* Run one kernel at several domain counts and insist on bitwise-equal
   outputs and simulated-statistics records. *)
let check_domain_invariant name run =
  let y1, st1 = run 1 in
  check_int "stats record domains=1" 1 st1.Stats.domains;
  List.iter
    (fun domains ->
      let y, st = run domains in
      check_bool
        (Printf.sprintf "%s: output bit-identical at domains=%d" name domains)
        true (y = y1);
      check_bool
        (Printf.sprintf "%s: simulated stats identical at domains=%d" name
           domains)
        true
        (Stats.equal_simulated st st1);
      check_int
        (Printf.sprintf "%s: stats record domains=%d" name domains)
        domains st.Stats.domains)
    [ 2; 4 ]

let test_scan_algos_domain_invariant () =
  (* Every registered unary scan — a new registry entry is covered by
     the domain-invariance contract automatically. *)
  List.iter
    (fun algo ->
      check_domain_invariant (Scan.Scan_api.algo_to_string algo)
        (fun domains ->
          let d = Device.create ~domains () in
          let x = Device.of_array d Dtype.F16 ~name:"x" scan_input in
          let y, st = Scan.Scan_api.run ~algo d x in
          (tensor_bits y (Array.length scan_input), st)))
    Scan.Scan_api.all_algos

let test_mcscan_exclusive_domain_invariant () =
  check_domain_invariant "mcscan exclusive" (fun domains ->
      let d = Device.create ~domains () in
      let x = Device.of_array d Dtype.F16 ~name:"x" scan_input in
      let y, st =
        Scan.Scan_api.run ~exclusive:true ~algo:(Scan.Scan_api.get "mcscan") d x
      in
      (tensor_bits y (Array.length scan_input), st))

let test_batched_domain_invariant () =
  let batch = 8 and len = 8192 in
  let data =
    Array.init (batch * len) (fun i -> if i mod 31 = 0 then 1.0 else 0.0)
  in
  List.iter
    (fun (label, run) ->
      check_domain_invariant label (fun domains ->
          let d = Device.create ~domains () in
          let x = Device.of_array d Dtype.F16 ~name:"x" data in
          let y, st = run d ~batch ~len x in
          (tensor_bits y (batch * len), st)))
    [
      ( "batched u",
        fun d ~batch ~len x -> Scan.Batched_scan.run_u d ~batch ~len x );
      ( "batched ul1",
        fun d ~batch ~len x -> Scan.Batched_scan.run_ul1 d ~batch ~len x );
    ]

let test_segmented_domain_invariant () =
  check_domain_invariant "segmented" (fun domains ->
      let d = Device.create ~domains () in
      let x = Device.of_array d Dtype.F16 ~name:"x" scan_input in
      let flags = Device.of_array d Dtype.I8 ~name:"f" flags_input in
      let y, st = Scan.Segmented_scan.run d ~x ~flags () in
      (tensor_bits y (Array.length scan_input), st))

(* Stateful features must force the sequential path: a degraded run
   (mid-run core kill, hence replay) is byte-for-byte independent of
   the requested domain count. *)
let test_degraded_falls_back_sequential () =
  let run domains =
    let d =
      Device.create ~domains
        ~fault:(Fault.config ~seed:0 ~rate:0.0 ~kills:[ (3, 2000.0) ] ())
        ()
    in
    let x = Device.of_array d Dtype.F16 ~name:"x" scan_input in
    let y, st = Scan.Mcscan.run d x in
    check_bool "kill fired" false (Health.alive (Device.health d) 3);
    (tensor_bits y (Array.length scan_input), st)
  in
  let y1, st1 = run 1 in
  let y4, st4 = run 4 in
  check_bool "degraded output independent of domains" true (y1 = y4);
  check_bool "degraded stats independent of domains" true
    (Stats.equal_simulated st1 st4)

(* ------------------------------------------------------------------ *)
(* Host wall-clock surface.                                           *)

let test_host_stats_surface () =
  let d = Device.create ~domains:2 () in
  let x = Device.of_array d Dtype.F16 ~name:"x" scan_input in
  let _, st = Scan.Mcscan.run d x in
  check_bool "host wall-clock measured" true (st.Stats.host_seconds > 0.0);
  check_bool "speedup vs self is ~1" true
    (Float.abs (Stats.host_speedup ~baseline:st st -. 1.0) < 1e-9);
  (* equal_simulated deliberately ignores the host-side fields. *)
  let st' = { st with Stats.host_seconds = st.Stats.host_seconds *. 10.0 } in
  check_bool "host_seconds not part of simulated equality" true
    (Stats.equal_simulated st st');
  check_bool "simulated fields are" false
    (Stats.equal_simulated st { st with Stats.seconds = st.Stats.seconds +. 1.0 })

let test_device_domains_validation () =
  (match Device.create ~domains:0 () with
  | _ -> Alcotest.fail "domains=0 accepted"
  | exception Invalid_argument _ -> ());
  (* The device default follows ASCEND_SIM_DOMAINS (so CI can run the
     whole suite parallel); mirror the same parse here. *)
  let expected_default =
    match Sys.getenv_opt "ASCEND_SIM_DOMAINS" with
    | None -> 1
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some d when d >= 1 -> d
        | _ -> 1)
  in
  check_int "default follows ASCEND_SIM_DOMAINS" expected_default
    (Device.domains (Device.create ()))

let () =
  Alcotest.run "domains"
    [
      ( "pool",
        [
          Alcotest.test_case "coverage" `Quick test_pool_coverage;
          Alcotest.test_case "one slot is sequential" `Quick
            test_pool_sequential_when_one_slot;
          Alcotest.test_case "smallest-index error" `Quick
            test_pool_reraises_smallest_index;
          Alcotest.test_case "nested degrades" `Quick test_pool_nested_degrades;
          Alcotest.test_case "shutdown degrades" `Quick
            test_pool_shutdown_degrades;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "scan algorithms" `Quick
            test_scan_algos_domain_invariant;
          Alcotest.test_case "mcscan exclusive" `Quick
            test_mcscan_exclusive_domain_invariant;
          Alcotest.test_case "batched scans" `Quick test_batched_domain_invariant;
          Alcotest.test_case "segmented scan" `Quick
            test_segmented_domain_invariant;
          Alcotest.test_case "degraded run sequential fallback" `Quick
            test_degraded_falls_back_sequential;
        ] );
      ( "host-surface",
        [
          Alcotest.test_case "host stats" `Quick test_host_stats_surface;
          Alcotest.test_case "domains validation" `Quick
            test_device_domains_validation;
        ] );
    ]
