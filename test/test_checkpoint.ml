(* Property-based tests (QCheck) of the row-granular Checkpoint and
   the crash-consistent Checkpoint_store: pending/done bookkeeping
   under random mark interleavings, and serialization roundtrips with
   torn-tail recovery. *)

open Runtime

(* Generator: a row count plus a random sequence of valid [lo, hi)
   mark ranges over it (possibly overlapping and repeated). *)
let marks_gen =
  QCheck.Gen.(
    let* rows = int_range 1 64 in
    let* n = int_range 0 24 in
    let* ranges =
      list_size (return n)
        (let* lo = int_range 0 (rows - 1) in
         let* hi = int_range (lo + 1) rows in
         return (lo, hi))
    in
    return (rows, ranges))

let print_marks (rows, ranges) =
  Printf.sprintf "rows=%d marks=[%s]" rows
    (String.concat ";"
       (List.map (fun (lo, hi) -> Printf.sprintf "%d,%d" lo hi) ranges))

let arb_marks = QCheck.make ~print:print_marks marks_gen

let replay (rows, ranges) =
  let ck = Checkpoint.create ~rows in
  List.iter (fun (lo, hi) -> Checkpoint.mark ck ~lo ~hi) ranges;
  ck

(* The model: a plain bool array driven by the same mark sequence. *)
let model (rows, ranges) =
  let done_ = Array.make rows false in
  List.iter
    (fun (lo, hi) ->
      for r = lo to hi - 1 do
        done_.(r) <- true
      done)
    ranges;
  done_

let prop_done_matches_model =
  QCheck.Test.make ~name:"is_done/done_count match a bool-array model"
    ~count:200 arb_marks (fun ((rows, _) as case) ->
      let ck = replay case in
      let m = model case in
      let expected = Array.fold_left (fun a d -> if d then a + 1 else a) 0 m in
      Checkpoint.done_count ck = expected
      && Checkpoint.complete ck = (expected = rows)
      && Array.for_all Fun.id
           (Array.init rows (fun r -> Checkpoint.is_done ck r = m.(r))))

let prop_pending_covers_undone =
  QCheck.Test.make
    ~name:"pending = exactly the un-done rows, disjoint and ascending"
    ~count:200
    (QCheck.pair arb_marks (QCheck.int_range 1 16))
    (fun (((rows, _) as case), granularity) ->
      let ck = replay case in
      let m = model case in
      let groups = Checkpoint.pending ck ~granularity in
      let covered = Array.make rows false in
      let ok = ref true in
      let last_hi = ref (-1) in
      List.iter
        (fun (lo, hi) ->
          if lo < !last_hi then ok := false;
          last_hi := hi;
          if lo < 0 || hi > rows || lo >= hi then ok := false;
          if hi - lo > granularity then ok := false;
          for r = lo to hi - 1 do
            if covered.(r) || m.(r) then ok := false;
            covered.(r) <- true
          done)
        groups;
      (* every un-done row is covered *)
      Array.iteri (fun r d -> if (not d) && not covered.(r) then ok := false) m;
      !ok)

let prop_commits_counts_marks =
  QCheck.Test.make ~name:"commits counts mark calls" ~count:100 arb_marks
    (fun ((_, ranges) as case) ->
      Checkpoint.commits (replay case) = List.length ranges)

(* Store roundtrip: commit random groups with random payloads, reload,
   and require the exact (bit-level) groups back in commit order. *)
let store_case_gen =
  QCheck.Gen.(
    let* rows = int_range 1 16 in
    let* len = int_range 1 8 in
    let* n = int_range 0 8 in
    let* groups =
      list_size (return n)
        (let* lo = int_range 0 (rows - 1) in
         let* hi = int_range (lo + 1) rows in
         let* values =
           array_size
             (return ((hi - lo) * len))
             (map (fun f -> Ascend.Fp16.round f) (float_range (-8.0) 8.0))
         in
         return (lo, hi, values))
    in
    return (rows, len, groups))

let print_store_case (rows, len, groups) =
  Printf.sprintf "rows=%d len=%d groups=%d" rows len (List.length groups)

let arb_store_case = QCheck.make ~print:print_store_case store_case_gen

let with_temp_store f =
  let path = Filename.temp_file "test_ckpt_" ".bin" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove path with Sys_error _ -> ());
      try Sys.remove (path ^ ".tmp") with Sys_error _ -> ())
    (fun () -> f path)

let prop_store_roundtrip =
  QCheck.Test.make ~name:"store roundtrip is exact and ordered" ~count:60
    arb_store_case (fun (rows, len, groups) ->
      with_temp_store (fun path ->
          let st = Checkpoint_store.create ~path ~rows ~len ~meta:"m" () in
          List.iter
            (fun (lo, hi, values) -> Checkpoint_store.commit st ~lo ~hi ~values)
            groups;
          match Checkpoint_store.load ~path with
          | Error _ -> false
          | Ok l ->
              l.Checkpoint_store.l_rows = rows
              && l.Checkpoint_store.l_len = len
              && l.Checkpoint_store.l_meta = "m"
              && (not l.Checkpoint_store.l_torn)
              && l.Checkpoint_store.l_groups = groups))

(* Torn-write recovery: truncating the file anywhere strictly inside
   the record region must never error, and must yield a prefix of the
   committed groups. *)
let prop_store_torn_tail_is_prefix =
  QCheck.Test.make ~name:"any truncation yields a clean prefix" ~count:60
    (QCheck.pair arb_store_case (QCheck.int_range 0 1000))
    (fun ((rows, len, groups), cut_salt) ->
      QCheck.assume (groups <> []);
      with_temp_store (fun path ->
          let st = Checkpoint_store.create ~path ~rows ~len () in
          List.iter
            (fun (lo, hi, values) -> Checkpoint_store.commit st ~lo ~hi ~values)
            groups;
          let full = In_channel.with_open_bin path In_channel.input_all in
          let header_len =
            (* magic + version + rows + len + meta_len + crc *)
            String.length "ASCKPT" + 2 + 4 + 4 + 4 + 4
          in
          let body = String.length full - header_len in
          let cut = header_len + (cut_salt mod max 1 body) in
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_string oc (String.sub full 0 cut));
          match Checkpoint_store.load ~path with
          | Error _ -> false
          | Ok l ->
              let k = List.length l.Checkpoint_store.l_groups in
              k <= List.length groups
              && l.Checkpoint_store.l_groups
                 = List.filteri (fun i _ -> i < k) groups))

let () =
  Alcotest.run "checkpoint"
    [
      ( "qcheck",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_done_matches_model;
            prop_pending_covers_undone;
            prop_commits_counts_marks;
            prop_store_roundtrip;
            prop_store_torn_tail_is_prefix;
          ] );
    ]
