(* Fault-matrix battery: one CI scenario per invocation.

   Usage:
     fault_matrix.exe [--inject-faults SEED:RATE] [--kill-core CORE[@CYCLE]]...

   Runs every multi-core operator under the requested fault regime
   through the resilient runner and checks the final outputs
   bit-identically against the host references. Exits 0 when every
   operator recovers, 1 on any mismatch or unrecovered failure, 2 on a
   malformed spec — so a CI matrix job is one flag set per cell. *)

open Ascend

let usage () =
  prerr_endline
    "usage: fault_matrix [--inject-faults SEED:RATE] [--kill-core \
     CORE[@CYCLE]]...";
  exit 2

let () =
  let faults = ref None in
  let kills = ref [] in
  let rec parse = function
    | [] -> ()
    | "--inject-faults" :: spec :: rest -> (
        match Fault.parse_spec spec with
        | Ok v ->
            faults := Some v;
            parse rest
        | Error msg ->
            prerr_endline ("fault_matrix: " ^ msg);
            exit 2)
    | "--kill-core" :: spec :: rest -> (
        match Health.parse_kill_spec spec with
        | Ok v ->
            kills := v :: !kills;
            parse rest
        | Error msg ->
            prerr_endline ("fault_matrix: " ^ msg);
            exit 2)
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let make_device () =
    let fault =
      match (!faults, !kills) with
      | None, [] -> None
      | _ ->
          let seed, rate = Option.value ~default:(0, 0.0) !faults in
          Some (Fault.config ~seed ~rate ~kills:!kills ())
    in
    Device.create ?fault ()
  in
  let n = 30000 in
  let input = Array.init n (fun i -> if i mod 37 = 0 then 1.0 else 0.0) in
  let failures = ref 0 in
  let report name ok detail =
    Printf.printf "%-28s %s%s\n%!" name
      (if ok then "ok" else "FAILED")
      (if detail = "" then "" else " (" ^ detail ^ ")");
    if not ok then incr failures
  in
  (* Scans through the resilient launcher: retries absorb transient
     corruption, the vector-only kernel is the degradation target for
     the sum-monoid entries (a different monoid gets no cross-kernel
     fallback — the sum fallback would compute the wrong function).
     The matrix enumerates the registry, so new scan entries are
     covered without edits here. *)
  let vec_only = Scan.Scan_api.get "vec_only" in
  let is_sum (algo : Scan.Scan_api.algo) =
    match algo.Scan.Op_registry.monoid with
    | Some (module Op : Scan.Scan_op.S) -> String.equal Op.name "sum"
    | None -> false
  in
  List.iter
    (fun algo ->
      let name = "scan/" ^ Scan.Scan_api.algo_to_string algo in
      let fallback = if is_sum algo then Some vec_only else None in
      match
        Runtime.Resilient.scan ~max_attempts:5
          ~oracle:Runtime.Resilient.Reference ?fallback ~algo (make_device ())
          ~input
      with
      | r ->
          report name r.Runtime.Resilient.ok
            (Printf.sprintf "%d attempts, %d detections"
               r.Runtime.Resilient.attempts r.Runtime.Resilient.detections)
      | exception (Health.All_cores_dead as e) ->
          report name false (Printexc.to_string e))
    Scan.Scan_api.all_algos;
  (* Checkpointed batched scan. *)
  (let batch = 16 and len = 2048 in
   let binput =
     Array.init (batch * len) (fun i -> if i mod 41 = 0 then 1.0 else 0.0)
   in
   match
     Runtime.Resilient.batched_scan ~granularity:4 ~max_attempts:6
       (make_device ()) ~batch ~len ~input:binput
   with
   | r ->
       let expect =
         Scan.Reference.batched_inclusive ~round:Fp16.round ~batch ~len binput
       in
       let identical =
         Array.init (batch * len) (Global_tensor.get r.Runtime.Resilient.y)
         = expect
       in
       report "batched/checkpointed" (r.Runtime.Resilient.bok && identical)
         (Printf.sprintf "%d group attempts, %d rows replayed"
            r.Runtime.Resilient.group_attempts
            r.Runtime.Resilient.replayed_rows)
   | exception (Health.All_cores_dead as e) ->
       report "batched/checkpointed" false (Printexc.to_string e));
  (* Radix sort: direct run (no oracle retry), order checked on host.
     Kills are absorbed by block replay; transient corruption would
     break the order, so only run it when the rate is zero. *)
  (match !faults with
  | Some (_, rate) when rate > 0.0 -> ()
  | _ ->
      let d = make_device () in
      let data =
        Array.init n (fun i -> float_of_int ((i * 2654435761) land 0x3FF))
      in
      let x = Device.of_array d Dtype.F16 ~name:"keys" data in
      let r = Ops.Radix_sort.run d x in
      let sorted = ref true in
      for i = 1 to n - 1 do
        if
          Global_tensor.get r.Ops.Radix_sort.values (i - 1)
          > Global_tensor.get r.Ops.Radix_sort.values i
        then sorted := false
      done;
      report "sort/radix" !sorted "");
  if !failures > 0 then begin
    Printf.printf "fault matrix: %d operator(s) FAILED\n" !failures;
    exit 1
  end;
  print_endline "fault matrix: all operators recovered"
