(* Pipeline-schedule benchmark (BENCH_9): SIMULATED cycles of the scan
   kernels under the three copy schedules the event-timeline engine
   model supports — Serial (synchronous copies, full barrier between
   tiles), Double (async loads, 2-stage) and Triple (async loads and
   stores, 3-stage) — at 64K / 256K / 1M elements.

   Unlike the wall-clock benches (BENCH_5..8) this measures the model
   itself: cycles are deterministic, so there is no sampling, no
   calibration, and the numbers are bit-reproducible on any host. The
   run doubles as the perf gate for the tentpole claim: the 3-stage
   MCScan must beat the serial schedule by >= [min_gain_pct] simulated
   compute cycles at every size, else exit 1.

   Usage: bench_pipeline.exe [BENCH_9.json] [--min-gain-pct 20] *)

open Ascend

let sizes = [ 65536; 262144; 1048576 ]
let schedules = Scan.Scan_core.[ Serial; Double; Triple ]

(* Sum of per-phase critical-path compute time, in core cycles: the
   engine-model quantity the schedules change. [Stats.seconds] also
   carries launch overhead and the bandwidth cap, so it is reported
   separately ([seconds]) but not gated on. *)
let compute_cycles (st : Stats.t) clock_hz =
  List.fold_left
    (fun acc (p : Stats.phase) -> acc +. (p.Stats.compute_seconds *. clock_hz))
    0.0 st.Stats.phases

type row = {
  kernel : string;
  dtype : string;
  n : int;
  sched : Scan.Scan_core.schedule;
  cycles : float;
  seconds : float;
}

let data_f16 n = Array.init n (fun i -> if i mod 37 = 0 then 1.0 else 0.0)

let data_f32 n =
  Array.init n (fun i ->
      if i mod 37 = 0 then 2.0 else if i mod 5 = 0 then -0.5 else 0.25)

let kernels =
  [
    ("mcscan", "f16", Dtype.F16, data_f16,
     fun dev x -> snd (Scan.Mcscan.run dev x));
    ("scan_u", "f16", Dtype.F16, data_f16,
     fun dev x -> snd (Scan.Scan_u.run dev x));
    ("vec_only", "f32", Dtype.F32, data_f32,
     fun dev x -> snd (Scan.Scan_vec_only.run dev x));
  ]

let run_rows () =
  List.concat_map
    (fun (kernel, dtype, dt, data, run) ->
      List.concat_map
        (fun n ->
          let a = data n in
          List.map
            (fun sched ->
              Scan.Scan_core.with_schedule sched (fun () ->
                  let dev = Device.create () in
                  let clock_hz = (Device.cost dev).Cost_model.clock_hz in
                  let x = Device.of_array dev dt ~name:"bx" a in
                  let st = run dev x in
                  {
                    kernel;
                    dtype;
                    n;
                    sched;
                    cycles = compute_cycles st clock_hz;
                    seconds = st.Stats.seconds;
                  }))
            schedules)
        sizes)
    kernels

let find rows ~kernel ~n ~sched =
  List.find
    (fun r -> r.kernel = kernel && r.n = n && r.sched = sched)
    rows

let json_of_rows rows ~min_gain_pct ~gate_ok =
  let b = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "{\n";
  pr "  \"bench\": \"pipeline_schedules\",\n";
  pr "  \"metric\": \"simulated compute cycles (deterministic)\",\n";
  pr "  \"min_gain_pct\": %g,\n" min_gain_pct;
  pr "  \"gate_ok\": %b,\n" gate_ok;
  pr "  \"rows\": [\n";
  let n_rows = List.length rows in
  List.iteri
    (fun i r ->
      pr
        "    {\"kernel\": \"%s\", \"dtype\": \"%s\", \"n\": %d, \
         \"schedule\": \"%s\", \"cycles\": %.0f, \"seconds\": %.9e}%s\n"
        r.kernel r.dtype r.n
        (Scan.Scan_core.schedule_name r.sched)
        r.cycles r.seconds
        (if i = n_rows - 1 then "" else ","))
    rows;
  pr "  ],\n";
  pr "  \"gains_pct\": [\n";
  let gains =
    List.concat_map
      (fun (kernel, _, _, _, _) ->
        List.map
          (fun n ->
            let s = (find rows ~kernel ~n ~sched:Scan.Scan_core.Serial).cycles
            and t = (find rows ~kernel ~n ~sched:Scan.Scan_core.Triple).cycles
            in
            (kernel, n, 100.0 *. (1.0 -. (t /. s))))
          sizes)
      kernels
  in
  let n_gains = List.length gains in
  List.iteri
    (fun i (kernel, n, g) ->
      pr "    {\"kernel\": \"%s\", \"n\": %d, \"triple_vs_serial\": %.2f}%s\n"
        kernel n g
        (if i = n_gains - 1 then "" else ","))
    gains;
  pr "  ]\n}\n";
  Buffer.contents b

let () =
  let args = Array.to_list Sys.argv in
  let path =
    match List.filter (fun a -> String.length a > 0 && a.[0] <> '-') (List.tl args) with
    | p :: _ -> p
    | [] -> "BENCH_9.json"
  in
  let min_gain_pct =
    let rec find = function
      | "--min-gain-pct" :: v :: _ -> float_of_string v
      | _ :: tl -> find tl
      | [] -> 20.0
    in
    find args
  in
  let rows = run_rows () in
  (* Gate: 3-stage MCScan beats serial by >= min_gain_pct at every size. *)
  let gate_ok =
    List.for_all
      (fun n ->
        let s = (find rows ~kernel:"mcscan" ~n ~sched:Scan.Scan_core.Serial).cycles in
        let t = (find rows ~kernel:"mcscan" ~n ~sched:Scan.Scan_core.Triple).cycles in
        let gain = 100.0 *. (1.0 -. (t /. s)) in
        Printf.printf "mcscan n=%d: serial %.0f -> triple %.0f cycles (%.1f%% gain)\n"
          n s t gain;
        gain >= min_gain_pct)
      sizes
  in
  let oc = open_out path in
  output_string oc (json_of_rows rows ~min_gain_pct ~gate_ok);
  close_out oc;
  Printf.printf "wrote %s\n" path;
  if not gate_ok then begin
    Printf.eprintf
      "bench_pipeline: GATE FAILED — pipelined mcscan gains < %g%% over serial\n"
      min_gain_pct;
    exit 1
  end
