(* Benchmark harness: regenerates every figure of the paper's
   evaluation section (Figures 3, 5, 8, 9, 10, 11, 12, 13), the two
   headline speedup claims, and the ablations of DESIGN.md, then runs
   a Bechamel wall-clock micro-benchmark of the simulator itself (one
   Test.make per figure).

   Simulated timings come from the cost model (DESIGN.md section 4);
   EXPERIMENTS.md records the paper-vs-measured comparison. Every
   kernel is first validated functionally against the reference oracle
   at a moderate size before its cost-only sweep is printed. *)

open Workload

let pow2 k = 1 lsl k
let dev_cost () = Ascend.Device.create ~mode:Ascend.Device.Cost_only ()
let dev_fn () = Ascend.Device.create ()
let us s = Table.fmt_time_us s
let gbs b = Table.fmt_gbs b

let alloc_f16 d n = Ascend.Device.alloc d Ascend.Dtype.F16 n ~name:"x"
let alloc_i8 d n = Ascend.Device.alloc d Ascend.Dtype.I8 n ~name:"m"

let results_dir = "results"

(* Print a table and persist it as CSV under results/. *)
let emit t =
  Table.print t;
  Table.save_csv t ~dir:results_dir

let verified = ref []
let note_verified name = verified := name :: !verified

let fail_verify name msg =
  Printf.eprintf "VERIFICATION FAILED (%s): %s\n%!" name msg;
  exit 1

(* Functional validation of a scan kernel at a moderate size. *)
let verify_scan ~name ?s algo =
  let n = 30000 in
  let data = Array.init n (fun i -> if i mod 37 = 0 then 1.0 else 0.0) in
  let d = dev_fn () in
  let x = Ascend.Device.of_array d Ascend.Dtype.F16 ~name:"x" data in
  let y, _ = Scan.Scan_api.run ?s ~algo d x in
  match
    Scan.Scan_api.check_scan ~round:Ascend.Fp16.round ~algo
      ~dtype:Ascend.Dtype.F16 ~input:data ~output:y ()
  with
  | Ok () -> note_verified name
  | Error e -> fail_verify name e

(* ------------------------------------------------------------------ *)
(* Figure 3: single-cube scans versus the vector-only CumSum API.     *)

let fig3 () =
  List.iter
    (fun name -> verify_scan ~name (Scan.Scan_api.get name))
    [ "vec_only"; "scanu"; "scanul1" ];
  let t =
    Table.create
      ~title:
        "Figure 3: execution time, CumSum (vec_only) vs ScanU vs ScanUL1 \
         (s = 128, fp16)"
      ~columns:
        [ "n"; "vec_only us"; "scanu us"; "scanul1 us"; "speedup U";
          "speedup UL1" ]
  in
  List.iter
    (fun k ->
      let n = pow2 k in
      let d = dev_cost () in
      let x = alloc_f16 d n in
      let _, sv = Scan.Scan_vec_only.run d x in
      let _, su = Scan.Scan_u.run d x in
      let _, sl = Scan.Scan_ul1.run d x in
      Table.add_row t
        [ string_of_int n; us sv.Ascend.Stats.seconds;
          us su.Ascend.Stats.seconds; us sl.Ascend.Stats.seconds;
          Table.fmt_float (Metrics.speedup ~baseline:sv su);
          Table.fmt_float (Metrics.speedup ~baseline:sv sl) ])
    [ 10; 12; 14; 16; 18; 20; 22 ];
  emit t

(* ------------------------------------------------------------------ *)
(* Figure 5: batched ScanUL1 / ScanU time ratio heatmap.              *)

let verify_batched () =
  let batch = 6 and len = 3000 in
  let data =
    Array.init (batch * len) (fun i -> if i mod 31 = 0 then 1.0 else 0.0)
  in
  let d = dev_fn () in
  let x = Ascend.Device.of_array d Ascend.Dtype.F16 ~name:"xb" data in
  let expect =
    Scan.Reference.batched_inclusive ~round:Ascend.Fp16.round ~batch ~len data
  in
  List.iter
    (fun (name, run) ->
      let y, _ = run d ~batch ~len x in
      for i = 0 to (batch * len) - 1 do
        if Ascend.Global_tensor.get y i <> expect.(i) then
          fail_verify name (Printf.sprintf "mismatch at %d" i)
      done;
      note_verified name)
    [ ("batched_u", fun d ~batch ~len x -> Scan.Batched_scan.run_u d ~batch ~len x);
      ("batched_ul1", fun d ~batch ~len x -> Scan.Batched_scan.run_ul1 d ~batch ~len x) ]

let fig5 () =
  verify_batched ();
  let lens = [ 256; 1024; 4096; 16384; 65536 ] in
  let batches = [ 1; 2; 4; 8; 16; 18; 24; 32; 48; 64 ] in
  let t =
    Table.create
      ~title:
        "Figure 5: time ratio ScanUL1/ScanU batched (<1 means ScanUL1 wins; \
         rows = batch, cols = length)"
      ~columns:("batch\\len" :: List.map string_of_int lens)
  in
  List.iter
    (fun batch ->
      let row =
        List.map
          (fun len ->
            let d = dev_cost () in
            let x = alloc_f16 d (batch * len) in
            let _, su = Scan.Batched_scan.run_u d ~batch ~len x in
            let _, sl = Scan.Batched_scan.run_ul1 d ~batch ~len x in
            Table.fmt_float (sl.Ascend.Stats.seconds /. su.Ascend.Stats.seconds))
          lens
      in
      Table.add_row t (string_of_int batch :: row))
    batches;
  emit t

(* ------------------------------------------------------------------ *)
(* Figure 8: MCScan bandwidth for s = 32/64/128 versus torch.clone.   *)

let fig8 () =
  verify_scan ~name:"mcscan" (Scan.Scan_api.get "mcscan");
  let t =
    Table.create
      ~title:
        "Figure 8: MCScan bandwidth (2 x n x 2B / time, GB/s; peak 800) vs \
         torch.clone"
      ~columns:[ "n"; "s=32"; "s=64"; "s=128"; "clone"; "s=128 %peak" ]
  in
  List.iter
    (fun k ->
      let n = pow2 k in
      let d = dev_cost () in
      let x = alloc_f16 d n in
      let bw s =
        let _, st = Scan.Mcscan.run ~s d x in
        Metrics.scan_bandwidth st ~n ~esize:2
      in
      let b32 = bw 32 and b64 = bw 64 and b128 = bw 128 in
      let _, stc = Ops.Baseline.clone d x in
      let bc = Metrics.scan_bandwidth stc ~n ~esize:2 in
      Table.add_row t
        [ string_of_int n; gbs b32; gbs b64; gbs b128; gbs bc;
          Table.fmt_float (Metrics.percent_of_peak b128) ^ "%" ])
    [ 16; 18; 20; 22; 24; 26; 27; 28 ];
  emit t

(* ------------------------------------------------------------------ *)
(* Figure 9: MCScan giga-elements per second, fp16 vs int8.           *)

let verify_mcscan_i8 () =
  let n = 50000 in
  let data = Array.init n (fun i -> if (i * 7) mod 11 < 5 then 1.0 else 0.0) in
  let d = dev_fn () in
  let x = Ascend.Device.of_array d Ascend.Dtype.I8 ~name:"m" data in
  let y, _ = Scan.Mcscan.run d x in
  let expect = Scan.Reference.inclusive_scan data in
  for i = 0 to n - 1 do
    if Ascend.Global_tensor.get y i <> expect.(i) then
      fail_verify "mcscan_i8" (Printf.sprintf "mismatch at %d" i)
  done;
  note_verified "mcscan_i8"

let fig9 () =
  verify_mcscan_i8 ();
  let t =
    Table.create
      ~title:"Figure 9: MCScan GElems/s, fp16 vs int8 input (s = 128)"
      ~columns:[ "n"; "fp16 GE/s"; "int8 GE/s"; "int8 gain" ]
  in
  List.iter
    (fun k ->
      let n = pow2 k in
      let d = dev_cost () in
      let xf = alloc_f16 d n in
      let xi = alloc_i8 d n in
      let _, sf = Scan.Mcscan.run d xf in
      let _, si = Scan.Mcscan.run d xi in
      Table.add_row t
        [ string_of_int n;
          Table.fmt_float (Metrics.giga_elements_per_second sf ~n);
          Table.fmt_float (Metrics.giga_elements_per_second si ~n);
          Table.fmt_float (sf.Ascend.Stats.seconds /. si.Ascend.Stats.seconds)
          ^ "x" ])
    [ 18; 20; 22; 24; 26; 28 ];
  emit t

(* ------------------------------------------------------------------ *)
(* Figure 10: compress bandwidth versus torch.masked_select.          *)

let verify_compress () =
  let n = 30000 in
  let data = Generators.uniform_f16 ~seed:5 n in
  let mask = Generators.ones_and_zeros ~seed:6 ~density:0.5 n in
  let d = dev_fn () in
  let x = Ascend.Device.of_array d Ascend.Dtype.F16 ~name:"x" data in
  let m = Ascend.Device.of_array d Ascend.Dtype.I8 ~name:"m" mask in
  let r = Ops.Compress.run d ~x ~mask:m () in
  let expect = Scan.Reference.compress data ~mask in
  if r.Ops.Compress.count <> Array.length expect then
    fail_verify "compress" "count mismatch";
  Array.iteri
    (fun i v ->
      if Ascend.Global_tensor.get r.Ops.Compress.values i <> v then
        fail_verify "compress" (Printf.sprintf "mismatch at %d" i))
    expect;
  note_verified "compress"

let fig10 () =
  verify_compress ();
  let t =
    Table.create
      ~title:
        "Figure 10: compress bandwidth vs torch.masked_select (uniform 50% \
         mask)"
      ~columns:
        [ "n"; "s=32 GB/s"; "s=64 GB/s"; "s=128 GB/s"; "masked_select GB/s" ]
  in
  List.iter
    (fun k ->
      let n = pow2 k in
      let d = dev_cost () in
      let x = alloc_f16 d n in
      let m = alloc_i8 d n in
      let bw s =
        let r = Ops.Compress.run ~s d ~x ~mask:m () in
        Metrics.scan_bandwidth r.Ops.Compress.stats ~n ~esize:2
      in
      let b32 = bw 32 and b64 = bw 64 and b128 = bw 128 in
      let _, _, stb = Ops.Baseline.masked_select d ~x ~mask:m in
      let bb = Metrics.scan_bandwidth stb ~n ~esize:2 in
      Table.add_row t
        [ string_of_int n; gbs b32; gbs b64; gbs b128; gbs bb ])
    [ 14; 16; 18; 20; 22 ];
  emit t

(* ------------------------------------------------------------------ *)
(* Figure 11: radix sort versus torch.sort (fp16 keys).               *)

let verify_radix () =
  let n = 20000 in
  let data = Generators.uniform_f16 ~seed:7 ~lo:(-100.0) ~hi:100.0 n in
  let d = dev_fn () in
  let x = Ascend.Device.of_array d Ascend.Dtype.F16 ~name:"x" data in
  let r = Ops.Radix_sort.run ~with_indices:true d x in
  let expect, _ = Scan.Reference.stable_sort_with_indices data in
  for i = 0 to n - 1 do
    if Ascend.Global_tensor.get r.Ops.Radix_sort.values i <> expect.(i) then
      fail_verify "radix_sort" (Printf.sprintf "mismatch at %d" i)
  done;
  note_verified "radix_sort";
  let b = pow2 14 in
  let data = Generators.uniform_f16 ~seed:8 b in
  let x = Ascend.Device.of_array d Ascend.Dtype.F16 ~name:"x2" data in
  let y, _ = Ops.Baseline.sort d x in
  let expect, _ = Scan.Reference.stable_sort_with_indices data in
  for i = 0 to b - 1 do
    if Ascend.Global_tensor.get y i <> expect.(i) then
      fail_verify "torch_sort" (Printf.sprintf "mismatch at %d" i)
  done;
  note_verified "torch_sort"

let fig11 () =
  verify_radix ();
  let t =
    Table.create
      ~title:"Figure 11: radix sort vs torch.sort, fp16 keys (time in us)"
      ~columns:[ "n"; "radix us"; "torch.sort us"; "radix speedup" ]
  in
  List.iter
    (fun k ->
      let n = pow2 k in
      let d = dev_cost () in
      let x = alloc_f16 d n in
      let r = Ops.Radix_sort.run d x in
      let _, sb = Ops.Baseline.sort d x in
      Table.add_row t
        [ string_of_int n; us r.Ops.Radix_sort.stats.Ascend.Stats.seconds;
          us sb.Ascend.Stats.seconds;
          Table.fmt_float
            (sb.Ascend.Stats.seconds
            /. r.Ops.Radix_sort.stats.Ascend.Stats.seconds)
          ^ "x" ])
    [ 16; 18; 19; 20; 21; 22; 23; 24; 25 ];
  emit t

(* ------------------------------------------------------------------ *)
(* Figure 12: batched scan bandwidth vs batch size (len = 65K).       *)

let fig12 () =
  let len = 65536 in
  let t =
    Table.create
      ~title:
        "Figure 12: batched ScanU bandwidth (GB/s) for increasing batch, len \
         = 65536"
      ~columns:[ "batch"; "s=16"; "s=32"; "s=64"; "s=128" ]
  in
  List.iter
    (fun batch ->
      let d = dev_cost () in
      let x = alloc_f16 d (batch * len) in
      let bw s =
        let _, st = Scan.Batched_scan.run_u ~s d ~batch ~len x in
        Metrics.scan_bandwidth st ~n:(batch * len) ~esize:2
      in
      Table.add_row t
        (string_of_int batch
        :: List.map (fun s -> gbs (bw s)) [ 16; 32; 64; 128 ]))
    [ 1; 2; 4; 8; 16; 24; 32; 40 ];
  emit t

(* ------------------------------------------------------------------ *)
(* Figure 13: top-p (nucleus) sampling, ours vs the stock pipeline.   *)

let verify_topp () =
  let vocab = 4096 in
  let probs = Generators.softmax_probs ~seed:11 vocab in
  let d = dev_fn () in
  let pt = Ascend.Device.of_array d Ascend.Dtype.F16 ~name:"p" probs in
  let r = Ops.Topp.sample d ~probs:pt ~p:0.9 ~theta:0.35 in
  (match r.Ops.Topp.token with
  | Some tok when tok >= 0 && tok < vocab && probs.(tok) > 0.0 -> ()
  | _ -> fail_verify "topp" "invalid token");
  if r.Ops.Topp.kept < 1 || r.Ops.Topp.kept >= vocab then
    fail_verify "topp" "implausible nucleus size";
  note_verified "topp"

let fig13 () =
  verify_topp ();
  let t =
    Table.create
      ~title:
        "Figure 13: top-p sampling time (us), single batch; PyTorch = stock \
         sort + cumsum"
      ~columns:[ "vocab"; "s=32"; "s=64"; "s=128"; "PyTorch" ]
  in
  List.iter
    (fun k ->
      let vocab = pow2 k in
      let ours s =
        let d = dev_cost () in
        let probs = alloc_f16 d vocab in
        (Ops.Topp.sample ~s d ~probs ~p:0.9 ~theta:0.4).Ops.Topp.stats
          .Ascend.Stats.seconds
      in
      let base =
        let d = dev_cost () in
        let probs = alloc_f16 d vocab in
        (Ops.Topp.sample_baseline d ~probs ~p:0.9 ~theta:0.4).Ops.Topp.stats
          .Ascend.Stats.seconds
      in
      Table.add_row t
        [ string_of_int vocab; us (ours 32); us (ours 64); us (ours 128);
          us base ])
    [ 12; 14; 16; 18; 20; 22 ];
  emit t

(* ------------------------------------------------------------------ *)
(* Headline numbers (abstract / sections 4.1 and 6.1).                *)

let headline () =
  let t =
    Table.create ~title:"Headline speedups (paper: 5x, 9.6x, 15.2x, 37.5%)"
      ~columns:[ "claim"; "paper"; "measured" ]
  in
  let d = dev_cost () in
  let x = alloc_f16 d (pow2 22) in
  let _, sv = Scan.Scan_vec_only.run d x in
  let _, su = Scan.Scan_u.run d x in
  let _, sl = Scan.Scan_ul1.run d x in
  Table.add_row t
    [ "ScanU vs vec-only"; "5x"; Table.fmt_float (Metrics.speedup ~baseline:sv su) ^ "x" ];
  Table.add_row t
    [ "ScanUL1 vs vec-only"; "9.6x";
      Table.fmt_float (Metrics.speedup ~baseline:sv sl) ^ "x" ];
  let big = alloc_f16 d (pow2 27) in
  let _, su_big = Scan.Scan_u.run d big in
  let _, smc = Scan.Mcscan.run d big in
  Table.add_row t
    [ "MCScan vs ScanU (20 cores)"; "15.2x";
      Table.fmt_float (Metrics.speedup ~baseline:su_big smc) ^ "x" ];
  let bw = Metrics.scan_bandwidth smc ~n:(pow2 27) ~esize:2 in
  Table.add_row t
    [ "MCScan % of peak bandwidth"; "37.5%";
      Table.fmt_float (Metrics.percent_of_peak bw) ^ "%" ];
  let best_radix =
    List.fold_left
      (fun acc k ->
        let r = Ops.Radix_sort.run d (alloc_f16 d (pow2 k)) in
        let _, sb = Ops.Baseline.sort d (alloc_f16 d (pow2 k)) in
        Float.max acc
          (sb.Ascend.Stats.seconds
          /. r.Ops.Radix_sort.stats.Ascend.Stats.seconds))
      0.0 [ 23; 25; 26 ]
  in
  Table.add_row t
    [ "radix sort vs torch.sort (max over n)"; "up to 3.3x";
      Table.fmt_float best_radix ^ "x" ];
  emit t

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md section 3).                                   *)

let ablation_traffic () =
  (* A1: global-memory traffic per input element of each strategy. The
     recomputation-based MCScan moves ~5 element-equivalents, the
     SSA-style TCU scan ~4 but pays extra launches and barriers. *)
  let t =
    Table.create
      ~title:
        "Ablation A1: GM traffic (bytes per input element) and time, MCScan \
         vs SSA-style TCU scan"
      ~columns:
        [ "n"; "mcscan B/elem"; "mcscan us"; "tcu B/elem"; "tcu us" ]
  in
  List.iter
    (fun k ->
      let n = pow2 k in
      let d = dev_cost () in
      let x = alloc_f16 d n in
      let _, smc = Scan.Mcscan.run d x in
      let _, stc = Scan.Tcu_scan.run d x in
      let per st = float_of_int (Ascend.Stats.gm_bytes st) /. float_of_int n in
      Table.add_row t
        [ string_of_int n; Table.fmt_float (per smc);
          us smc.Ascend.Stats.seconds; Table.fmt_float (per stc);
          us stc.Ascend.Stats.seconds ])
    [ 16; 20; 24; 27 ];
  emit t

let ablation_pipeline () =
  (* A2: double buffering on/off for ScanU. *)
  let t =
    Table.create
      ~title:"Ablation A2: ScanU with and without software pipelining"
      ~columns:[ "n"; "pipelined us"; "serial us"; "gain" ]
  in
  List.iter
    (fun k ->
      let n = pow2 k in
      let d = dev_cost () in
      let x = alloc_f16 d n in
      let _, sp = Scan.Scan_u.run d x in
      let _, ss = Scan.Scan_u.run ~no_pipeline:true d x in
      Table.add_row t
        [ string_of_int n; us sp.Ascend.Stats.seconds;
          us ss.Ascend.Stats.seconds;
          Table.fmt_float
            (ss.Ascend.Stats.seconds /. sp.Ascend.Stats.seconds)
          ^ "x" ])
    [ 14; 18; 22 ];
  emit t

let ablation_low_bits () =
  (* Section 6.3's expectation: sorting low-bit-width keys costs
     proportionally fewer radix passes (2x gain for 8-bit keys). *)
  let t =
    Table.create
      ~title:"Ablation A4: radix passes vs key width (u16 keys, n = 4M)"
      ~columns:[ "bits"; "time us"; "vs 16-bit" ]
  in
  let n = pow2 22 in
  let d = dev_cost () in
  let x = Ascend.Device.alloc d Ascend.Dtype.U16 n ~name:"keys" in
  let t16 =
    (Ops.Radix_sort.run ~bits:16 d x).Ops.Radix_sort.stats.Ascend.Stats.seconds
  in
  List.iter
    (fun bits ->
      let tb =
        (Ops.Radix_sort.run ~bits d x).Ops.Radix_sort.stats.Ascend.Stats
          .seconds
      in
      Table.add_row t
        [ string_of_int bits; us tb; Table.fmt_float (t16 /. tb) ^ "x" ])
    [ 16; 8; 4 ];
  emit t

let ablation_extensions () =
  (* A5: the extension kernels — segmented scan vs plain scan overhead,
     and the two reduction engine profiles. *)
  let t =
    Table.create
      ~title:
        "Ablation A5: extensions — segmented scan vs MCScan, cube vs vector          reduction"
      ~columns:
        [ "n"; "mcscan us"; "segscan us"; "cube-red us"; "vec-red us" ]
  in
  List.iter
    (fun k ->
      let n = pow2 k in
      let d = dev_cost () in
      let x = alloc_f16 d n in
      let flags = alloc_i8 d n in
      let _, smc = Scan.Mcscan.run d x in
      let _, sseg = Scan.Segmented_scan.run d ~x ~flags () in
      let _, _, scr = Scan.Cube_reduce.run_cube d x in
      let _, _, svr = Scan.Cube_reduce.run_vec d x in
      Table.add_row t
        [ string_of_int n; us smc.Ascend.Stats.seconds;
          us sseg.Ascend.Stats.seconds; us scr.Ascend.Stats.seconds;
          us svr.Ascend.Stats.seconds ])
    [ 16; 20; 24; 26 ];
  emit t;
  (* Multi-draw sampling amortisation. *)
  let t2 =
    Table.create
      ~title:
        "Ablation A6: weighted sampling, k draws via sample_many vs k single          draws (n = 4M)"
      ~columns:[ "k"; "sample_many us"; "k x single us"; "amortisation" ]
  in
  let n = pow2 22 in
  let d = dev_cost () in
  let w = alloc_f16 d n in
  let _, st_one = Ops.Weighted_sampling.sample d ~weights:w ~theta:0.5 in
  List.iter
    (fun k ->
      let thetas = Array.init k (fun j -> float_of_int j /. float_of_int (k + 1)) in
      let _, st = Ops.Weighted_sampling.sample_many d ~weights:w ~thetas in
      let singles = float_of_int k *. st_one.Ascend.Stats.seconds in
      Table.add_row t2
        [ string_of_int k; us st.Ascend.Stats.seconds; us singles;
          Table.fmt_float (singles /. st.Ascend.Stats.seconds) ^ "x" ])
    [ 1; 8; 32; 128 ];
  emit t2

let ablation_topk () =
  (* A7: three top-k strategies. Functional mode (the selects are
     data-dependent); moderate n. The streaming baseline wins at small
     k (the paper's negative result); the radix select is k-insensitive. *)
  let t =
    Table.create
      ~title:"Ablation A7: top-k strategies (n = 262144, functional run)"
      ~columns:[ "k"; "stock topk us"; "quickselect us"; "radix-select us" ]
  in
  let n = pow2 18 in
  let data = Generators.uniform_f16 ~seed:99 n in
  let d = dev_fn () in
  let x = Ascend.Device.of_array d Ascend.Dtype.F16 ~name:"x" data in
  List.iter
    (fun k ->
      let _, sb = Ops.Baseline.topk d x ~k in
      let _, sq = Ops.Topk.run d x ~k in
      let _, sr = Ops.Radix_select.run d x ~k in
      Table.add_row t
        [ string_of_int k; us sb.Ascend.Stats.seconds;
          us sq.Ascend.Stats.seconds; us sr.Ascend.Stats.seconds ])
    [ 16; 256; 4096 ];
  emit t

let ablation_cumsum_config () =
  (* A8: CumSumInfo tile-shape sensitivity of the vector-only baseline
     (the paper configures it as (128, 128)). Wider rows amortise the
     per-row instruction overhead. *)
  let t =
    Table.create
      ~title:"Ablation A8: CumSum API tile shape (vec-only baseline, n = 1M)"
      ~columns:[ "rows x cols"; "time us" ]
  in
  let n = pow2 20 in
  List.iter
    (fun (rows, cols) ->
      let d = dev_cost () in
      let x = alloc_f16 d n in
      let _, st = Scan.Scan_vec_only.run ~rows ~cols d x in
      Table.add_row t
        [ Printf.sprintf "%dx%d" rows cols; us st.Ascend.Stats.seconds ])
    [ (32, 32); (64, 64); (128, 128); (64, 256) ];
  emit t

(* ------------------------------------------------------------------ *)
(* Robustness: fault-detection coverage and resilient-run overhead.   *)

let robustness () =
  let n = pow2 14 in
  let input = Array.init n (fun i -> if i mod 37 = 0 then 1.0 else 0.0) in
  (* Every sum-monoid unary scan in the registry: the coverage table
     grows with new entries, and the reference oracle below stays
     valid (it checks a running sum). *)
  let algos =
    List.filter_map
      (fun (algo : Scan.Scan_api.algo) ->
        match algo.Scan.Op_registry.monoid with
        | Some (module Op : Scan.Scan_op.S) when String.equal Op.name "sum" ->
            Some (Scan.Scan_api.algo_to_string algo, algo)
        | _ -> None)
      Scan.Scan_api.all_algos
  in
  let trials = 24 in
  let rate = 0.02 in
  (* Coverage: fraction of fault-injected runs whose corruption the
     reference oracle catches. Only trials where a data-corrupting
     fault actually fired count (stalls cost time, not bits; and a
     flip can land on padding the kernel never reads back). *)
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Robustness R1: fault-detection coverage (%d seeds, rate %.0f%%, \
            n = %d) and resilient overhead at rate 0"
           trials (100.0 *. rate) n)
      ~columns:
        [ "algo"; "corrupted runs"; "detected"; "coverage"; "plain us";
          "resilient us"; "overhead" ]
  in
  List.iter
    (fun (name, algo) ->
      let corrupted = ref 0 and detected = ref 0 in
      for seed = 1 to trials do
        let d =
          Ascend.Device.create
            ~fault:(Ascend.Fault.config ~seed ~rate ())
            ()
        in
        let x = Ascend.Device.of_array d Ascend.Dtype.F16 ~name:"x" input in
        let y, st = Scan.Scan_api.run ~algo d x in
        let corrupting =
          List.exists
            (fun (e : Ascend.Fault.event) -> Ascend.Fault.corrupts_data e.kind)
            st.Ascend.Stats.faults
        in
        if corrupting then begin
          incr corrupted;
          match
            Scan.Scan_api.check_against_reference ~round:Ascend.Fp16.round
              ~input ~output:y ()
          with
          | Error _ -> incr detected
          | Ok () -> ()
        end
      done;
      (* Overhead: at fault rate 0 the resilient launcher runs exactly
         one attempt; its simulated time should match a plain run. *)
      let d = dev_fn () in
      let x = Ascend.Device.of_array d Ascend.Dtype.F16 ~name:"x" input in
      let _, plain = Scan.Scan_api.run ~algo d x in
      let r = Runtime.Resilient.scan ~algo (dev_fn ()) ~input in
      let overhead =
        100.0
        *. (r.Runtime.Resilient.stats.Ascend.Stats.seconds
            -. plain.Ascend.Stats.seconds)
        /. plain.Ascend.Stats.seconds
      in
      Table.add_row t
        [ name; string_of_int !corrupted; string_of_int !detected;
          (if !corrupted = 0 then "n/a"
           else
             Table.fmt_float
               (100.0 *. float_of_int !detected /. float_of_int !corrupted)
             ^ "%");
          us plain.Ascend.Stats.seconds;
          us r.Runtime.Resilient.stats.Ascend.Stats.seconds;
          Table.fmt_float overhead ^ "%" ])
    algos;
  emit t

(* ------------------------------------------------------------------ *)
(* Robustness R2: degraded-mode throughput and recovery overhead.     *)

let robustness_degraded () =
  let dead_counts = [ 0; 1; 2; 4; 8; 12; 16; 19 ] in
  let pre_kills k = List.init k (fun c -> (c, 0.0)) in
  (* Bit-identity first: MCScan re-sharded over any surviving-core
     count must match the reference exactly. *)
  let vn = 30000 in
  let input = Array.init vn (fun i -> if i mod 37 = 0 then 1.0 else 0.0) in
  List.iter
    (fun k ->
      let d =
        Ascend.Device.create
          ~fault:(Ascend.Fault.config ~seed:0 ~rate:0.0 ~kills:(pre_kills k) ())
          ()
      in
      let x = Ascend.Device.of_array d Ascend.Dtype.F16 ~name:"x" input in
      let y, _ = Scan.Scan_api.run ~algo:(Scan.Scan_api.get "mcscan") d x in
      match
        Scan.Scan_api.check_against_reference ~round:Ascend.Fp16.round ~input
          ~output:y ()
      with
      | Ok () -> ()
      | Error e ->
          fail_verify
            (Printf.sprintf "mcscan_degraded(%d dead)" k)
            e)
    dead_counts;
  note_verified "mcscan_degraded(0..19 dead)";
  let n = pow2 20 in
  let cm = Ascend.Cost_model.default in
  let t =
    Table.create
      ~title:
        "Robustness R2: MCScan with dead cores (n = 1M, s = 128): degraded \
         throughput and mid-run kill recovery overhead"
      ~columns:
        [ "dead"; "alive"; "pre-dead us"; "GB/s"; "slowdown"; "mid-kill us";
          "recovery ovh"; "live eng-busy %" ]
  in
  let t_healthy = ref 0.0 in
  List.iter
    (fun k ->
      (* Pre-dead: the cores never existed as far as the scheduler is
         concerned — pure degraded-sharding throughput. *)
      let d =
        Ascend.Device.create ~mode:Ascend.Device.Cost_only
          ~fault:(Ascend.Fault.config ~seed:0 ~rate:0.0 ~kills:(pre_kills k) ())
          ()
      in
      let x = alloc_f16 d n in
      let _, st = Scan.Mcscan.run d x in
      if k = 0 then t_healthy := st.Ascend.Stats.seconds;
      (* Mid-run kill: the same cores die 1000 busy cycles in, so their
         partial blocks are thrown away and replayed on the survivors.
         Recovery overhead is the extra time over the pre-dead run. *)
      let mid_kills = List.init k (fun c -> (c, 1000.0)) in
      let d2 =
        Ascend.Device.create ~mode:Ascend.Device.Cost_only
          ~fault:(Ascend.Fault.config ~seed:0 ~rate:0.0 ~kills:mid_kills ())
          ()
      in
      let x2 = alloc_f16 d2 n in
      let _, st2 = Scan.Mcscan.run d2 x2 in
      (* Per-core utilization from Stats.core_busy: summed engine-busy
         cycles of each surviving core over the kernel makespan. A
         core's engines (cube, vectors, MTEs) overlap, so a loaded
         core can exceed 100%. *)
      let util = Ascend.Stats.core_utilization st in
      let alive = 20 - k in
      let live_util =
        if Array.length util = 0 then 0.0
        else begin
          let acc = ref 0.0 in
          for c = k to 19 do
            acc := !acc +. (util.(c) /. cm.Ascend.Cost_model.clock_hz)
          done;
          100.0 *. !acc /. float_of_int alive
        end
      in
      Table.add_row t
        [ string_of_int k; string_of_int alive; us st.Ascend.Stats.seconds;
          gbs (Metrics.scan_bandwidth st ~n ~esize:2);
          Table.fmt_float (st.Ascend.Stats.seconds /. !t_healthy) ^ "x";
          us st2.Ascend.Stats.seconds;
          Table.fmt_float
            (100.0
            *. (st2.Ascend.Stats.seconds -. st.Ascend.Stats.seconds)
            /. st.Ascend.Stats.seconds)
          ^ "%";
          Table.fmt_float live_util ^ "%" ])
    dead_counts;
  emit t;
  (* Checkpointed batched scan under the two recovery layers: a core
     death is absorbed by the block-level launch replay (rows never
     reach the checkpoint retry path), while detected corruption fails
     the group oracle and replays only the unfinished rows. *)
  let batch = 32 and len = 4096 in
  let binput =
    Array.init (batch * len) (fun i -> if i mod 41 = 0 then 1.0 else 0.0)
  in
  let t2 =
    Table.create
      ~title:
        "Robustness R2b: checkpointed batched scan (batch = 32, len = 4096): \
         recovery overhead by failure mode"
      ~columns:
        [ "scenario"; "time us"; "group attempts"; "rows replayed";
          "overhead" ]
  in
  let base = ref 0.0 in
  List.iter
    (fun (name, fault) ->
      let d = Ascend.Device.create ?fault () in
      let r =
        Runtime.Resilient.batched_scan ~granularity:4 ~max_attempts:5 d ~batch
          ~len ~input:binput
      in
      if not r.Runtime.Resilient.bok then
        fail_verify "batched_checkpoint" (name ^ ": incomplete checkpoint");
      let secs = r.Runtime.Resilient.bstats.Ascend.Stats.seconds in
      if fault = None then base := secs;
      Table.add_row t2
        [ name; us secs;
          string_of_int r.Runtime.Resilient.group_attempts;
          string_of_int r.Runtime.Resilient.replayed_rows;
          Table.fmt_float (100.0 *. (secs -. !base) /. !base) ^ "%" ])
    [ ("healthy", None);
      ( "kill core 0 @ 2k cycles",
        Some (Ascend.Fault.config ~seed:0 ~rate:0.0 ~kills:[ (0, 2000.0) ] ())
      );
      ( "faults 2% (seed 9)",
        Some (Ascend.Fault.config ~seed:9 ~rate:0.02 ()) );
      ( "faults 2% + kill core 1",
        Some
          (Ascend.Fault.config ~seed:9 ~rate:0.02 ~kills:[ (1, 2000.0) ] ())
      ) ];
  note_verified "batched_checkpoint(kill+faults mid-batch)";
  emit t2

(* ------------------------------------------------------------------ *)
(* Bechamel: wall-clock micro-benchmarks of the simulator itself.     *)

let bechamel_suite () =
  let open Bechamel in
  let fn_dev = dev_fn () in
  let data = Array.init 16384 (fun i -> if i mod 37 = 0 then 1.0 else 0.0) in
  let x16k = Ascend.Device.of_array fn_dev Ascend.Dtype.F16 ~name:"x" data in
  let mask =
    Ascend.Device.of_array fn_dev Ascend.Dtype.I8 ~name:"m"
      (Array.init 16384 (fun i -> if i mod 2 = 0 then 1.0 else 0.0))
  in
  let stage f = Staged.stage f in
  let tests =
    [
      Test.make ~name:"fig3_scanul1_16k" (stage (fun () -> ignore (Scan.Scan_ul1.run fn_dev x16k)));
      Test.make ~name:"fig5_batched_u" (stage (fun () ->
          ignore (Scan.Batched_scan.run_u fn_dev ~batch:4 ~len:4096 x16k)));
      Test.make ~name:"fig8_mcscan_16k" (stage (fun () -> ignore (Scan.Mcscan.run fn_dev x16k)));
      Test.make ~name:"fig9_mcscan_i8" (stage (fun () -> ignore (Scan.Mcscan.run fn_dev mask)));
      Test.make ~name:"fig10_compress" (stage (fun () ->
          ignore (Ops.Compress.run fn_dev ~x:x16k ~mask ())));
      Test.make ~name:"fig11_radix_16k" (stage (fun () -> ignore (Ops.Radix_sort.run fn_dev x16k)));
      Test.make ~name:"fig12_batched_scan" (stage (fun () ->
          ignore (Scan.Batched_scan.run_ul1 fn_dev ~batch:4 ~len:4096 x16k)));
      Test.make ~name:"fig13_topp_4k"
        (stage
           (let probs = Generators.softmax_probs ~seed:3 4096 in
            let pt = Ascend.Device.of_array fn_dev Ascend.Dtype.F16 ~name:"p" probs in
            fun () -> ignore (Ops.Topp.sample fn_dev ~probs:pt ~p:0.9 ~theta:0.3)));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.25) ~kde:(Some 10) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false
      ~predictors:[| Measure.run |]
  in
  Printf.printf "\n== Bechamel: simulator wall-clock (ns per simulated kernel) ==\n";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analysis = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-24s %12.0f ns/run\n" name est
          | _ -> Printf.printf "%-24s (no estimate)\n" name)
        analysis)
    tests

let () =
  let t0 = Sys.time () in
  Format.printf "Ascend parallel-scan reproduction benchmark harness@.";
  Format.printf "%a@." Ascend.Cost_model.pp Ascend.Cost_model.default;
  fig3 ();
  fig5 ();
  fig8 ();
  fig9 ();
  fig10 ();
  fig11 ();
  fig12 ();
  fig13 ();
  headline ();
  ablation_traffic ();
  ablation_pipeline ();
  ablation_low_bits ();
  ablation_extensions ();
  ablation_topk ();
  ablation_cumsum_config ();
  robustness ();
  robustness_degraded ();
  Printf.printf "\nFunctionally verified against reference oracles: %s\n"
    (String.concat ", " (List.rev !verified));
  bechamel_suite ();
  Printf.printf "\nTotal harness time: %.1f s (cpu)\n" (Sys.time () -. t0)
