(* Perf-regression gate: compare a fresh BENCH_8 smoke run against the
   committed baseline JSON and fail (exit 1) when the host-normalised
   MCScan ns_per_run regressed by more than the threshold.

   Usage: perf_gate BASELINE.json CURRENT.json [--threshold-pct N]

   Both files are BENCH_8.json documents from bench/bench_domains.ml
   (the current one typically produced with --smoke). Machine speed is
   factored out by dividing each ns_per_run by its file's
   calibration_ns — the fixed pure-OCaml loop both runs timed on their
   own host — so a slower CI machine does not register as a
   regression and a faster one does not mask a real slowdown.

   The parser is a minimal field scanner (this repo adds no JSON
   dependency): it finds the first occurrence of a quoted key and
   reads the number after the colon, which is exactly the shape
   bench_domains.ml emits. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

(* Index just past the first occurrence of ["key"] at or after [from]. *)
let find_key json ~from key =
  let pat = "\"" ^ key ^ "\"" in
  let plen = String.length pat in
  let jlen = String.length json in
  let rec go i =
    if i + plen > jlen then None
    else if String.sub json i plen = pat then Some (i + plen)
    else go (i + 1)
  in
  go from

(* The number following ["key":] at or after [from]. *)
let number_after ?(from = 0) json ~path key =
  match find_key json ~from key with
  | None -> fail "%s: field \"%s\" not found" path key
  | Some i ->
      let n = String.length json in
      let i = ref i in
      while
        !i < n && (json.[!i] = ':' || json.[!i] = ' ' || json.[!i] = '\n')
      do
        incr i
      done;
      let j = ref !i in
      while
        !j < n
        && (match json.[!j] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr j
      done;
      if !j = !i then fail "%s: field \"%s\" has no numeric value" path key;
      float_of_string (String.sub json !i (!j - !i))

(* ns_per_run of the domains=1 row: the first row bench_domains emits. *)
let mcscan_d1 json ~path =
  match find_key json ~from:0 "mcscan" with
  | None -> fail "%s: field \"mcscan\" not found" path
  | Some i -> number_after ~from:i json ~path "ns_per_run"

(* --sim mode: simulated-cycle regression over BENCH_9 / BENCH_10
   documents. Cycles are deterministic model outputs — the same commit
   always produces the same numbers on any host — so the default
   threshold is 0: any increase in any cycles field is a regression.
   Rows are paired positionally; both files must come from the same
   bench (the emitters are deterministic, so equal row counts and
   order are guaranteed for the same bench version). *)

let all_cycles json =
  (* Every number following a key ending in "cycles", with the key's
     position for error reporting. *)
  let n = String.length json in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    (match json.[!i] with
    | '"' -> (
        let j = ref (!i + 1) in
        while !j < n && json.[!j] <> '"' do
          incr j
        done;
        if !j < n then begin
          let key = String.sub json (!i + 1) (!j - !i - 1) in
          let klen = String.length key in
          if
            klen >= 6
            && String.sub key (klen - 6) 6 = "cycles"
            && !j + 1 < n
            && json.[!j + 1] = ':'
          then begin
            let k = ref (!j + 2) in
            while !k < n && json.[!k] = ' ' do
              incr k
            done;
            let e = ref !k in
            while
              !e < n
              && (match json.[!e] with
                 | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
                 | _ -> false)
            do
              incr e
            done;
            if !e > !k then
              out :=
                (key, float_of_string (String.sub json !k (!e - !k))) :: !out
          end;
          i := !j
        end)
    | _ -> ());
    incr i
  done;
  List.rev !out

let sim_gate ~threshold_pct baseline baseline_path current current_path =
  let base = all_cycles baseline and cur = all_cycles current in
  if base = [] then fail "%s: no cycles fields found" baseline_path;
  if List.length base <> List.length cur then
    fail "%s vs %s: row mismatch (%d vs %d cycles fields) -- same bench?"
      baseline_path current_path (List.length base) (List.length cur);
  (* A current run that failed its own internal gate is a regression
     regardless of the baseline. *)
  (match find_key current ~from:0 "gate_ok" with
  | Some i ->
      let rest = String.sub current i (min 16 (String.length current - i)) in
      if
        String.length rest >= 6
        && String.sub (String.trim (String.map (function ':' -> ' ' | c -> c) rest)) 0 4
           = "fals"
      then fail "%s: gate_ok is false" current_path
  | None -> ());
  let worst = ref 0.0 in
  let failures = ref 0 in
  List.iter2
    (fun (bk, bv) (ck, cv) ->
      if bk <> ck then
        fail "%s vs %s: field order differs (%s vs %s)" baseline_path
          current_path bk ck;
      let change_pct = if bv > 0.0 then (cv /. bv -. 1.0) *. 100.0 else 0.0 in
      if change_pct > !worst then worst := change_pct;
      if change_pct > threshold_pct then begin
        incr failures;
        Printf.printf "  REGRESSED %-18s %12.0f -> %12.0f  (%+.2f%%)\n" bk bv
          cv change_pct
      end)
    base cur;
  Printf.printf
    "perf gate (sim): %d cycles fields compared, worst change %+.2f%% \
     (threshold +%g%%)\n"
    (List.length base) !worst threshold_pct;
  if !failures > 0 then
    fail "perf gate FAILED: %d simulated-cycle field(s) regressed" !failures;
  print_endline "perf gate OK"

let () =
  let threshold = ref None in
  let sim = ref false in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--threshold-pct" :: v :: rest ->
        threshold := Some (float_of_string v);
        parse rest
    | "--sim" :: rest ->
        sim := true;
        parse rest
    | x :: rest ->
        files := x :: !files;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let baseline_path, current_path =
    match List.rev !files with
    | [ b; c ] -> (b, c)
    | _ ->
        fail
          "usage: perf_gate [--sim] BASELINE.json CURRENT.json \
           [--threshold-pct N]"
  in
  let baseline = read_file baseline_path in
  let current = read_file current_path in
  if !sim then begin
    (* Deterministic cycles: exact match expected by default. *)
    let threshold_pct = Option.value ~default:0.0 !threshold in
    sim_gate ~threshold_pct baseline baseline_path current current_path;
    exit 0
  end;
  let threshold_pct = Option.value ~default:25.0 !threshold in
  let norm json path =
    let cal = number_after json ~path "calibration_ns" in
    if cal <= 0.0 then fail "%s: calibration_ns must be positive" path;
    let ns = mcscan_d1 json ~path in
    (ns, cal, ns /. cal)
  in
  let base_ns, base_cal, base_norm = norm baseline baseline_path in
  let cur_ns, cur_cal, cur_norm = norm current current_path in
  let change_pct = (cur_norm /. base_norm -. 1.0) *. 100.0 in
  Printf.printf
    "perf gate: mcscan d=1\n\
    \  baseline  %12.0f ns/run  (calibration %8.0f ns, normalised %8.3f)\n\
    \  current   %12.0f ns/run  (calibration %8.0f ns, normalised %8.3f)\n\
    \  change    %+.1f%%  (threshold +%.0f%%)\n%!"
    base_ns base_cal base_norm cur_ns cur_cal cur_norm change_pct threshold_pct;
  if change_pct > threshold_pct then
    fail
      "perf gate FAILED: normalised mcscan ns_per_run regressed %.1f%% (> \
       %.0f%% threshold)"
      change_pct threshold_pct;
  print_endline "perf gate OK"
