(* Perf-regression gate: compare a fresh BENCH_8 smoke run against the
   committed baseline JSON and fail (exit 1) when the host-normalised
   MCScan ns_per_run regressed by more than the threshold.

   Usage: perf_gate BASELINE.json CURRENT.json [--threshold-pct N]

   Both files are BENCH_8.json documents from bench/bench_domains.ml
   (the current one typically produced with --smoke). Machine speed is
   factored out by dividing each ns_per_run by its file's
   calibration_ns — the fixed pure-OCaml loop both runs timed on their
   own host — so a slower CI machine does not register as a
   regression and a faster one does not mask a real slowdown.

   The parser is a minimal field scanner (this repo adds no JSON
   dependency): it finds the first occurrence of a quoted key and
   reads the number after the colon, which is exactly the shape
   bench_domains.ml emits. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

(* Index just past the first occurrence of ["key"] at or after [from]. *)
let find_key json ~from key =
  let pat = "\"" ^ key ^ "\"" in
  let plen = String.length pat in
  let jlen = String.length json in
  let rec go i =
    if i + plen > jlen then None
    else if String.sub json i plen = pat then Some (i + plen)
    else go (i + 1)
  in
  go from

(* The number following ["key":] at or after [from]. *)
let number_after ?(from = 0) json ~path key =
  match find_key json ~from key with
  | None -> fail "%s: field \"%s\" not found" path key
  | Some i ->
      let n = String.length json in
      let i = ref i in
      while
        !i < n && (json.[!i] = ':' || json.[!i] = ' ' || json.[!i] = '\n')
      do
        incr i
      done;
      let j = ref !i in
      while
        !j < n
        && (match json.[!j] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr j
      done;
      if !j = !i then fail "%s: field \"%s\" has no numeric value" path key;
      float_of_string (String.sub json !i (!j - !i))

(* ns_per_run of the domains=1 row: the first row bench_domains emits. *)
let mcscan_d1 json ~path =
  match find_key json ~from:0 "mcscan" with
  | None -> fail "%s: field \"mcscan\" not found" path
  | Some i -> number_after ~from:i json ~path "ns_per_run"

let () =
  let threshold = ref 25.0 in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--threshold-pct" :: v :: rest ->
        threshold := float_of_string v;
        parse rest
    | x :: rest ->
        files := x :: !files;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let threshold_pct = !threshold in
  let baseline_path, current_path =
    match List.rev !files with
    | [ b; c ] -> (b, c)
    | _ ->
        fail "usage: perf_gate BASELINE.json CURRENT.json [--threshold-pct N]"
  in
  let baseline = read_file baseline_path in
  let current = read_file current_path in
  let norm json path =
    let cal = number_after json ~path "calibration_ns" in
    if cal <= 0.0 then fail "%s: calibration_ns must be positive" path;
    let ns = mcscan_d1 json ~path in
    (ns, cal, ns /. cal)
  in
  let base_ns, base_cal, base_norm = norm baseline baseline_path in
  let cur_ns, cur_cal, cur_norm = norm current current_path in
  let change_pct = (cur_norm /. base_norm -. 1.0) *. 100.0 in
  Printf.printf
    "perf gate: mcscan d=1\n\
    \  baseline  %12.0f ns/run  (calibration %8.0f ns, normalised %8.3f)\n\
    \  current   %12.0f ns/run  (calibration %8.0f ns, normalised %8.3f)\n\
    \  change    %+.1f%%  (threshold +%.0f%%)\n%!"
    base_ns base_cal base_norm cur_ns cur_cal cur_norm change_pct threshold_pct;
  if change_pct > threshold_pct then
    fail
      "perf gate FAILED: normalised mcscan ns_per_run regressed %.1f%% (> \
       %.0f%% threshold)"
      change_pct threshold_pct;
  print_endline "perf gate OK"
