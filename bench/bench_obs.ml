(* Observability benchmark (BENCH_5): two representative kernels
   (ScanU and MCScan) run under full instruction tracing.

   Reported per kernel:
   - the simulated metrics (time, GM traffic, event counts) — these
     are deterministic, so the JSON doubles as a cheap regression
     check on the recorder;
   - the per-phase engine occupancy and bounding resource, recovered
     from the emitted Chrome trace exactly the way `trace summary`
     does (through the JSON, not the in-memory recorder — exercising
     the whole export path);
   - the host-side cost of tracing: Bechamel wall-clock of the same
     launch with the recorder armed vs disarmed.

   Emits BENCH_5.json (path overridable as argv.(1)). *)

let scan_n = 1 lsl 16
let kernels = [ "scanu"; "mcscan" ]

let ols =
  Bechamel.Analyze.ols ~bootstrap:0 ~r_square:false
    ~predictors:[| Bechamel.Measure.run |]

let cfg = Bechamel.Benchmark.cfg ~limit:20 ~quota:(Bechamel.Time.second 0.5) ()

let time_ns name f =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage f) in
  let instance = Toolkit.Instance.monotonic_clock in
  let results = Benchmark.all cfg [ instance ] test in
  let analysis = Analyze.all ols instance results in
  let est = ref nan in
  Hashtbl.iter
    (fun _ result ->
      match Analyze.OLS.estimates result with
      | Some [ e ] -> est := e
      | _ -> ())
    analysis;
  !est

let entry name =
  match Scan.Op_registry.find name with
  | Some e -> e
  | None -> failwith ("unknown kernel: " ^ name)

let phase_json (s : Obs.Trace_summary.phase_sum) =
  Obs.Jsonw.Obj
    [
      ("index", Obs.Jsonw.Int s.Obs.Trace_summary.index);
      ("dur_us", Obs.Jsonw.Float s.Obs.Trace_summary.dur_us);
      ("bound", Obs.Jsonw.String s.Obs.Trace_summary.bound);
      ("bounding", Obs.Jsonw.String s.Obs.Trace_summary.bounding);
      ( "occupancy",
        Obs.Jsonw.Obj
          (List.map
             (fun (name, occ) -> (name, Obs.Jsonw.Float occ))
             s.Obs.Trace_summary.engines) );
    ]

let bench_kernel name =
  let e = entry name in
  let st, tr =
    match Workload.Op_driver.run ~n:scan_n e with
    | Ok (st, Some tr) -> (st, tr)
    | Ok (_, None) -> failwith (name ^ ": driver returned no trace")
    | Error msg -> failwith (name ^ ": " ^ msg)
  in
  (match Ascend.Trace.check tr with
  | Ok () -> ()
  | Error msg -> failwith (name ^ ": inconsistent trace: " ^ msg));
  let doc = Obs.Chrome_trace.json tr in
  let phases =
    match Obs.Trace_summary.of_json doc with
    | Ok s -> s
    | Error msg -> failwith (name ^ ": " ^ msg)
  in
  let traced_ns =
    time_ns (name ^ "_traced") (fun () ->
        ignore (Workload.Op_driver.run ~n:scan_n ~traced:true e))
  in
  let plain_ns =
    time_ns (name ^ "_plain") (fun () ->
        ignore (Workload.Op_driver.run ~n:scan_n ~traced:false e))
  in
  Printf.printf
    "  %-8s sim %8.3f us  %6d events  traced %9.0f ns/run  plain %9.0f \
     ns/run  overhead %+.1f%%\n\
     %!"
    name
    (st.Ascend.Stats.seconds *. 1e6)
    (Ascend.Trace.event_count tr)
    traced_ns plain_ns
    (100.0 *. ((traced_ns /. plain_ns) -. 1.0));
  List.iter
    (fun (s : Obs.Trace_summary.phase_sum) ->
      Printf.printf "    phase %d: %s-bound, bounded by %s\n%!"
        s.Obs.Trace_summary.index s.Obs.Trace_summary.bound
        s.Obs.Trace_summary.bounding)
    phases;
  ( name,
    Obs.Jsonw.Obj
      [
        ("n", Obs.Jsonw.Int scan_n);
        ("sim_us", Obs.Jsonw.Float (st.Ascend.Stats.seconds *. 1e6));
        ( "gm_bytes",
          Obs.Jsonw.Int
            (st.Ascend.Stats.gm_read_bytes + st.Ascend.Stats.gm_write_bytes) );
        ("trace_events", Obs.Jsonw.Int (Ascend.Trace.event_count tr));
        ("trace_spans", Obs.Jsonw.Int (Ascend.Trace.span_count tr));
        ("trace_instants", Obs.Jsonw.Int (Ascend.Trace.mark_count tr));
        ("phases", Obs.Jsonw.List (List.map phase_json phases));
        ("traced_ns_per_run", Obs.Jsonw.Float traced_ns);
        ("plain_ns_per_run", Obs.Jsonw.Float plain_ns);
        ("tracing_overhead", Obs.Jsonw.Float (traced_ns /. plain_ns));
      ] )

let () =
  let out_path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_5.json"
  in
  Printf.printf "BENCH_5: instruction tracing, n = %d\n%!" scan_n;
  let rows = List.map bench_kernel kernels in
  let doc =
    Obs.Jsonw.Obj
      [
        ("bench", Obs.Jsonw.String "BENCH_5");
        ("generated_by", Obs.Jsonw.String "bench/bench_obs.ml");
        ( "note",
          Obs.Jsonw.String
            "Two kernels under full instruction tracing. Simulated metrics, \
             event counts and occupancy are deterministic; the *_ns_per_run \
             fields are host wall-clock and vary by machine." );
        ("kernels", Obs.Jsonw.Obj rows);
      ]
  in
  let oc = open_out out_path in
  Obs.Jsonw.to_channel ~pretty:true oc doc;
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" out_path
