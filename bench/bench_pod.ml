(* Pod / distributed-scan benchmark (BENCH_7): the multi-NPU layer
   measured end to end, in process.

   Three sections:

   - exchange schedules: the distributed scan on 2/4/8-device pods
     under both schedules. Ring and all-gather must produce identical
     bytes (the fold order is fixed by shard index, not by schedule);
     what differs is link traffic and the bandwidth-bound exchange
     phase, which is what the numbers show.

   - kill-device recovery: a checkpointed pod run that loses a device
     mid-batch versus a clean run. The re-sharding rule keeps the
     output bytes identical; recovery latency is the extra simulated
     time (retried group + backoff) the attrition run pays.

   - pod-partition crash/resume: the scenarios/pod-partition.chaos
     storyline (link outage + fault storm + device kill + host crash)
     run as reference / crashed / resumed legs against a checkpoint
     store, exactly like `pod run` / `pod resume`.

   Invariants enforced (exit 1 on violation, so CI can gate):
   rows lost = 0, resume-vs-reference byte diffs = 0, re-executed
   committed rows = 0, ring-vs-allgather byte diffs = 0, and retry
   amplification <= 2.0 under pod-partition.

   Emits BENCH_7.json (path overridable as argv.(1); the scenario file
   as argv.(2)). *)

let batch = 16
let len = 2048
let devices = 4

let ols =
  Bechamel.Analyze.ols ~bootstrap:0 ~r_square:false
    ~predictors:[| Bechamel.Measure.run |]

let cfg = Bechamel.Benchmark.cfg ~limit:20 ~quota:(Bechamel.Time.second 0.5) ()

let time_ns name f =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage f) in
  let instance = Toolkit.Instance.monotonic_clock in
  let results = Benchmark.all cfg [ instance ] test in
  let analysis = Analyze.all ols instance results in
  let est = ref nan in
  Hashtbl.iter
    (fun _ result ->
      match Analyze.OLS.estimates result with
      | Some [ e ] -> est := e
      | _ -> ())
    analysis;
  !est

let input = Array.init (batch * len) (fun i -> if i mod 53 = 0 then 1.0 else 0.0)

let failures = ref 0

let must_zero what v =
  if v <> 0 then begin
    incr failures;
    Printf.printf "  INVARIANT VIOLATED: %s = %d (expected 0)\n%!" what v
  end

let diffs a b =
  let d = ref 0 in
  Array.iteri (fun i v -> if v <> b.(i) then incr d) a;
  !d

(* --- section 1: exchange schedules ---------------------------------- *)

let dist_bytes (r : Scan.Dist_scan.report) =
  Array.init (Ascend.Global_tensor.length r.Scan.Dist_scan.y) (fun i ->
      Int64.bits_of_float (Ascend.Global_tensor.get r.Scan.Dist_scan.y i))

let run_dist ~d ~schedule row =
  let pod = Pod.create ~devices:d () in
  let x =
    Ascend.Device.of_array (Pod.primary pod) Ascend.Dtype.F16 ~name:"bench_x"
      row
  in
  Scan.Dist_scan.run ~schedule pod x

let bench_schedules () =
  let n = 32768 in
  let row = Array.init n (fun i -> if i mod 53 = 0 then 1.0 else 0.0) in
  let per_d d =
    let ring = run_dist ~d ~schedule:Scan.Dist_scan.Ring row in
    let ag = run_dist ~d ~schedule:Scan.Dist_scan.All_gather row in
    must_zero
      (Printf.sprintf "schedules: ring-vs-allgather byte diffs (d=%d)" d)
      (diffs (dist_bytes ring) (dist_bytes ag));
    let leg name (r : Scan.Dist_scan.report) =
      Printf.printf
        "  d=%d %-9s compute %8.3f us  link %8.3f us  sends %3d  retries %d\n%!"
        d name
        (r.Scan.Dist_scan.stats.Ascend.Stats.seconds *. 1e6)
        (r.Scan.Dist_scan.link_seconds *. 1e6)
        r.Scan.Dist_scan.exchange_sends r.Scan.Dist_scan.exchange_retries;
      Obs.Jsonw.Obj
        [
          ( "compute_sim_us",
            Obs.Jsonw.Float (r.Scan.Dist_scan.stats.Ascend.Stats.seconds *. 1e6)
          );
          ("link_sim_us", Obs.Jsonw.Float (r.Scan.Dist_scan.link_seconds *. 1e6));
          ("exchange_sends", Obs.Jsonw.Int r.Scan.Dist_scan.exchange_sends);
          ("exchange_retries", Obs.Jsonw.Int r.Scan.Dist_scan.exchange_retries);
        ]
    in
    ( Printf.sprintf "devices_%d" d,
      Obs.Jsonw.Obj
        [
          ("n", Obs.Jsonw.Int n);
          ("ring", leg "ring" ring);
          ("allgather", leg "allgather" ag);
        ] )
  in
  Obs.Jsonw.Obj (List.map per_d [ 2; 4; 8 ])

(* --- section 2: kill-device recovery --------------------------------- *)

let kill_scenario =
  "name bench-kill\nseed 5\nat launch 1 kill device=2\n"

let run_pod ?store ?chaos () =
  let pod = Pod.create ~devices () in
  (Runtime.Pod_runner.batched_scan ?store ?chaos pod ~batch ~len ~input, pod)

let pod_bytes (r : Runtime.Pod_runner.report) =
  Array.init (batch * len) (fun i ->
      Int64.bits_of_float (Ascend.Global_tensor.get r.Runtime.Pod_runner.py i))

let bench_kill_recovery () =
  let sc =
    match Runtime.Chaos.parse kill_scenario with
    | Ok sc -> sc
    | Error e -> failwith ("bench-kill: " ^ e)
  in
  let clean, _ = run_pod () in
  let killed, _ =
    run_pod ~chaos:(Runtime.Chaos.arm ~skip_crashes:true sc) ()
  in
  must_zero "kill: clean-vs-attrition byte diffs"
    (diffs (pod_bytes clean) (pod_bytes killed));
  must_zero "kill: rows shed" killed.Runtime.Pod_runner.pshed_rows;
  let clean_us = clean.Runtime.Pod_runner.pstats.Ascend.Stats.seconds *. 1e6 in
  let killed_us = killed.Runtime.Pod_runner.pstats.Ascend.Stats.seconds *. 1e6 in
  (* Compute-side recovery is 0 when the kill lands between launches
     (re-sharding is proactive, and the Stats are placement-invariant
     by design). The link delta is typically NEGATIVE: shards that land
     on the same surviving device exchange prefixes for free, so
     attrition collapses traffic onto fewer links rather than adding
     retries. A positive recovery latency only appears when the kill
     interrupts an in-flight group and the runner retries it. *)
  let recovery_us = killed_us -. clean_us in
  let link_delta_us =
    (killed.Runtime.Pod_runner.plink_seconds
    -. clean.Runtime.Pod_runner.plink_seconds)
    *. 1e6
  in
  let dist_ns =
    let row = Array.sub input 0 len in
    time_ns "dist_scan_host" (fun () ->
        ignore (run_dist ~d:devices ~schedule:Scan.Dist_scan.Ring row))
  in
  Printf.printf
    "  kill-device: clean %8.3f us  attrition %8.3f us  recovery %8.3f us  \
     link delta %8.3f us  devices lost %d\n\
     %!"
    clean_us killed_us recovery_us link_delta_us
    killed.Runtime.Pod_runner.pdevices_lost;
  Obs.Jsonw.Obj
    [
      ("batch", Obs.Jsonw.Int batch);
      ("len", Obs.Jsonw.Int len);
      ("devices", Obs.Jsonw.Int devices);
      ("clean_sim_us", Obs.Jsonw.Float clean_us);
      ("attrition_sim_us", Obs.Jsonw.Float killed_us);
      ("recovery_latency_us", Obs.Jsonw.Float recovery_us);
      ("link_delta_us", Obs.Jsonw.Float link_delta_us);
      ("devices_lost", Obs.Jsonw.Int killed.Runtime.Pod_runner.pdevices_lost);
      ( "group_attempts",
        Obs.Jsonw.Int killed.Runtime.Pod_runner.pgroup_attempts );
      ("byte_diffs", Obs.Jsonw.Int 0);
      ("dist_scan_host_ns", Obs.Jsonw.Float dist_ns);
    ]

(* --- section 3: pod-partition crash/resume ---------------------------- *)

let bench_partition scenario_path =
  let text =
    let ic = open_in_bin scenario_path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let sc =
    match Runtime.Chaos.parse text with
    | Ok sc -> sc
    | Error e -> failwith (scenario_path ^ ": " ^ e)
  in
  let make_pod () =
    let primary =
      Ascend.Device.create ~mode:Ascend.Device.Functional
        ~fault:(Runtime.Chaos.fault_config sc) ()
    in
    Pod.create_with ~primary ~devices ()
  in
  let run_leg ?store ~skip_crashes () =
    let pod = make_pod () in
    let ch = Runtime.Chaos.arm ~skip_crashes sc in
    Runtime.Pod_runner.batched_scan ?store ~chaos:ch pod ~batch ~len ~input
  in
  let store_path = Filename.temp_file "bench_pod_" ".ckpt" in
  (* Reference: full storyline, crash skipped. *)
  let ref_r = run_leg ~skip_crashes:true () in
  let ref_bytes = pod_bytes ref_r in
  let retry_amp =
    float_of_int ref_r.Runtime.Pod_runner.pgroup_attempts
    /. float_of_int
         (max 1
            (Runtime.Checkpoint.commits ref_r.Runtime.Pod_runner.pcheckpoint))
  in
  (* Crashed leg: Host_crash escapes mid-batch; only the store survives. *)
  let store =
    Runtime.Checkpoint_store.create ~path:store_path ~rows:batch ~len
      ~meta:"bench-pod-partition" ()
  in
  let crashed_commits =
    match run_leg ~store ~skip_crashes:false () with
    | _ -> Runtime.Checkpoint_store.commits store
    | exception Runtime.Chaos.Host_crash _ ->
        Runtime.Checkpoint_store.commits store
  in
  (* Resume leg: reopen like a fresh `pod resume` process. *)
  let resumed_store, l =
    match Runtime.Checkpoint_store.reopen ~path:store_path with
    | Ok (st, l) -> (st, l)
    | Error e -> failwith ("reopen: " ^ e)
  in
  let res_r = run_leg ~store:resumed_store ~skip_crashes:true () in
  let rows_done =
    Runtime.Checkpoint.done_count res_r.Runtime.Pod_runner.pcheckpoint
  in
  let rows_lost = batch - rows_done in
  let byte_diffs = diffs ref_bytes (pod_bytes res_r) in
  let reexecuted =
    let all = Runtime.Checkpoint_store.groups resumed_store in
    let restored = Array.make batch false in
    List.iteri
      (fun i (lo, hi, _) ->
        if i < crashed_commits then
          for r = lo to hi - 1 do
            restored.(r) <- true
          done)
      all;
    let overlap = ref 0 in
    List.iteri
      (fun i (lo, hi, _) ->
        if i >= crashed_commits then
          for r = lo to hi - 1 do
            if restored.(r) then incr overlap
          done)
      all;
    !overlap
  in
  Printf.printf
    "  pod-partition: retry-amp %.2f  commits-at-crash %d  restored %d  lost \
     %d  diffs %d  rerouted %d  devices lost %d\n\
     %!"
    retry_amp crashed_commits res_r.Runtime.Pod_runner.prestored_rows rows_lost
    byte_diffs ref_r.Runtime.Pod_runner.prerouted
    ref_r.Runtime.Pod_runner.pdevices_lost;
  must_zero "pod-partition: rows lost" rows_lost;
  must_zero "pod-partition: resume-vs-reference byte diffs" byte_diffs;
  must_zero "pod-partition: re-executed committed rows" reexecuted;
  if retry_amp > 2.0 then begin
    incr failures;
    Printf.printf
      "  INVARIANT VIOLATED: pod-partition retry amplification %.2f > 2.0\n%!"
      retry_amp
  end;
  Sys.remove store_path;
  (try Sys.remove (store_path ^ ".tmp") with Sys_error _ -> ());
  Obs.Jsonw.Obj
    [
      ("scenario", Obs.Jsonw.String scenario_path);
      ("batch", Obs.Jsonw.Int batch);
      ("len", Obs.Jsonw.Int len);
      ("devices", Obs.Jsonw.Int devices);
      ( "reference_sim_us",
        Obs.Jsonw.Float
          (ref_r.Runtime.Pod_runner.pstats.Ascend.Stats.seconds *. 1e6) );
      ( "resume_sim_us",
        Obs.Jsonw.Float
          (res_r.Runtime.Pod_runner.pstats.Ascend.Stats.seconds *. 1e6) );
      ("retry_amplification", Obs.Jsonw.Float retry_amp);
      ("store_commits_at_crash", Obs.Jsonw.Int crashed_commits);
      ("restored_rows", Obs.Jsonw.Int res_r.Runtime.Pod_runner.prestored_rows);
      ("torn_tail_on_reopen", Obs.Jsonw.Bool l.Runtime.Checkpoint_store.l_torn);
      ("rows_lost", Obs.Jsonw.Int rows_lost);
      ("resume_byte_diffs", Obs.Jsonw.Int byte_diffs);
      ("reexecuted_committed_rows", Obs.Jsonw.Int reexecuted);
      ("rerouted_sends", Obs.Jsonw.Int ref_r.Runtime.Pod_runner.prerouted);
      ("devices_lost", Obs.Jsonw.Int ref_r.Runtime.Pod_runner.pdevices_lost);
    ]

let () =
  let out_path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_7.json"
  in
  let scenario_path =
    if Array.length Sys.argv > 2 then Sys.argv.(2)
    else "scenarios/pod-partition.chaos"
  in
  Printf.printf "BENCH_7: pod scan, batch = %d, len = %d, devices = %d\n%!"
    batch len devices;
  let schedules = bench_schedules () in
  let kill = bench_kill_recovery () in
  let partition = bench_partition scenario_path in
  let doc =
    Obs.Jsonw.Obj
      [
        ("bench", Obs.Jsonw.String "BENCH_7");
        ("generated_by", Obs.Jsonw.String "bench/bench_pod.ml");
        ( "note",
          Obs.Jsonw.String
            "Distributed scan over a simulated pod: exchange-schedule \
             comparison, kill-device recovery, and the pod-partition \
             crash/resume storyline. Simulated metrics are deterministic; \
             dist_scan_host_ns is host wall-clock and varies by machine. \
             rows_lost, resume_byte_diffs, reexecuted_committed_rows and the \
             ring-vs-allgather diff must be 0; retry_amplification must stay \
             <= 2.0." );
        ("schedules", schedules);
        ("kill_recovery", kill);
        ("pod_partition", partition);
      ]
  in
  let oc = open_out out_path in
  Obs.Jsonw.to_channel ~pretty:true oc doc;
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" out_path;
  if !failures > 0 then begin
    Printf.printf "BENCH_7: %d invariant violation(s)\n%!" !failures;
    exit 1
  end
