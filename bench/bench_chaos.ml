(* Chaos / recovery benchmark (BENCH_6): the robustness subsystem
   measured end to end, in process.

   For each embedded scenario:
   - an uninterrupted reference run (crash events skipped) fixes the
     expected output bytes and the fault-free-of-crash cost;
   - a crashed run executes until the scenario's crash event raises
     [Chaos.Host_crash] mid-batch, leaving only the checkpoint store;
   - a resume run restores the store and finishes the batch.

   Reported per scenario:
   - recovery latency: simulated seconds of crashed + resumed runs
     over the uninterrupted run (work lost to the crash + replay), and
     the host-side wall-clock of a store reopen+restore (Bechamel);
   - retry amplification: group attempts per committed group;
   - rows lost: rows missing from the resumed output — MUST be 0;
   - re-executed committed rows: rows the resume launched again even
     though the store already held them — MUST be 0;
   - byte diffs between the resumed output and the reference — MUST
     be 0 (resume-equals-replay);
   - determinism: two fresh runs of the same scenario produce the
     same fired-event log and identical output bytes.

   Emits BENCH_6.json (path overridable as argv.(1)); exits 1 when
   any MUST-be-zero invariant is violated, so CI can gate on it. *)

let batch = 32
let len = 2048

let scenarios =
  [
    ( "crash_resume",
      "name crash_resume\n\
       seed 11\n\
       at launch 1 storm rate=0.3 kinds=dropped_copy for=2\n\
       at launch 4 crash\n" );
    ( "storm_then_crash",
      "name storm_then_crash\n\
       seed 42\n\
       rate 0.0005\n\
       at launch 0 storm rate=0.7 kinds=dropped_copy,truncated_copy \
       scope=cube for=3\n\
       at launch 5 crash\n" );
    ( "attrition_crash",
      "name attrition_crash\n\
       seed 7\n\
       at launch 1 kill core=3\n\
       at launch 2 quarantine core=5 for=2\n\
       at launch 3 crash\n" );
  ]

let ols =
  Bechamel.Analyze.ols ~bootstrap:0 ~r_square:false
    ~predictors:[| Bechamel.Measure.run |]

let cfg = Bechamel.Benchmark.cfg ~limit:20 ~quota:(Bechamel.Time.second 0.5) ()

let time_ns name f =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage f) in
  let instance = Toolkit.Instance.monotonic_clock in
  let results = Benchmark.all cfg [ instance ] test in
  let analysis = Analyze.all ols instance results in
  let est = ref nan in
  Hashtbl.iter
    (fun _ result ->
      match Analyze.OLS.estimates result with
      | Some [ e ] -> est := e
      | _ -> ())
    analysis;
  !est

let parse_scenario name text =
  match Runtime.Chaos.parse text with
  | Ok sc -> sc
  | Error msg -> failwith (name ^ ": " ^ msg)

let input = Array.init (batch * len) (fun i -> if i mod 53 = 0 then 1.0 else 0.0)

let make_device sc =
  Ascend.Device.create ~mode:Ascend.Device.Functional
    ~fault:(Runtime.Chaos.fault_config sc) ()

(* One batched run under the scenario; [store] and [skip_crashes]
   select the reference / crashed / resumed roles. *)
let run_once ?store ~skip_crashes sc =
  let device = make_device sc in
  let ctl = Runtime.Degrade_ctl.create () in
  let ch = Runtime.Chaos.arm ~skip_crashes sc in
  let r =
    Runtime.Resilient.batched_scan ?store ~ctl ~chaos:ch device ~batch ~len
      ~input
  in
  (r, ch)

let output_bytes (r : Runtime.Resilient.batched_report) =
  Array.init (batch * len) (fun i ->
      Ascend.Global_tensor.get r.Runtime.Resilient.y i)

let diffs a b =
  let d = ref 0 in
  Array.iteri (fun i v -> if v <> b.(i) then incr d) a;
  !d

let failures = ref 0

let must_zero what v =
  if v <> 0 then begin
    incr failures;
    Printf.printf "  INVARIANT VIOLATED: %s = %d (expected 0)\n%!" what v
  end

let bench_scenario (name, text) =
  let sc = parse_scenario name text in
  let store_path = Filename.temp_file "bench_chaos_" ".ckpt" in
  (* Reference: the same storyline with the crash skipped. *)
  let ref_r, _ = run_once ~skip_crashes:true sc in
  let ref_bytes = output_bytes ref_r in
  (* Crashed run: Host_crash escapes mid-batch; only the store survives. *)
  let store =
    Runtime.Checkpoint_store.create ~path:store_path ~rows:batch ~len ()
  in
  let crash_seconds = ref 0.0 in
  let crashed_commits =
    match run_once ~store ~skip_crashes:false sc with
    | r, _ ->
        (* No crash event reached: treat the full run as the "crashed"
           leg so the resume leg becomes a no-op restore. *)
        crash_seconds := r.Runtime.Resilient.bstats.Ascend.Stats.seconds;
        Runtime.Checkpoint_store.commits store
    | exception Runtime.Chaos.Host_crash _ ->
        Runtime.Checkpoint_store.commits store
  in
  (* Resume: reopen the store like a fresh process would. *)
  let resumed, l =
    match Runtime.Checkpoint_store.reopen ~path:store_path with
    | Ok (st, l) -> (st, l)
    | Error e -> failwith (name ^ ": reopen: " ^ e)
  in
  let res_r, _ = run_once ~store:resumed ~skip_crashes:true sc in
  let res_bytes = output_bytes res_r in
  let rows_done = Runtime.Checkpoint.done_count res_r.Runtime.Resilient.checkpoint in
  let rows_lost = batch - rows_done in
  let byte_diffs = diffs ref_bytes res_bytes in
  (* Committed rows must never be re-executed: the store's commit log
     is (crashed-run groups) ++ (resume-run groups) in order, and the
     resume's groups must be row-disjoint from what it restored. *)
  let reexecuted_committed =
    let all_groups = Runtime.Checkpoint_store.groups resumed in
    let restored_set = Array.make batch false in
    List.iteri
      (fun i (lo, hi, _) ->
        if i < crashed_commits then
          for r = lo to hi - 1 do
            restored_set.(r) <- true
          done)
      all_groups;
    let overlap = ref 0 in
    List.iteri
      (fun i (lo, hi, _) ->
        if i >= crashed_commits then
          for r = lo to hi - 1 do
            if restored_set.(r) then incr overlap
          done)
      all_groups;
    !overlap
  in
  (* Determinism: two fresh runs, same storyline, same bytes. *)
  let det_a, ch_a = run_once ~skip_crashes:true sc in
  let det_b, ch_b = run_once ~skip_crashes:true sc in
  let det_log_equal = Runtime.Chaos.fired ch_a = Runtime.Chaos.fired ch_b in
  let det_diffs = diffs (output_bytes det_a) (output_bytes det_b) in
  let retry_amp =
    float_of_int ref_r.Runtime.Resilient.group_attempts
    /. float_of_int
         (max 1 (Runtime.Checkpoint.commits ref_r.Runtime.Resilient.checkpoint))
  in
  let reopen_ns =
    time_ns (name ^ "_reopen") (fun () ->
        match Runtime.Checkpoint_store.load ~path:store_path with
        | Ok _ -> ()
        | Error e -> failwith e)
  in
  let ref_us = ref_r.Runtime.Resilient.bstats.Ascend.Stats.seconds *. 1e6 in
  let resume_us = res_r.Runtime.Resilient.bstats.Ascend.Stats.seconds *. 1e6 in
  let crash_us = !crash_seconds *. 1e6 in
  Printf.printf
    "  %-18s ref %8.3f us  resume %8.3f us  restored %2d rows  retry-amp \
     %.2f  lost %d  diffs %d  det %b\n\
     %!"
    name ref_us resume_us res_r.Runtime.Resilient.restored_rows retry_amp
    rows_lost byte_diffs
    (det_log_equal && det_diffs = 0);
  must_zero (name ^ ": rows lost") rows_lost;
  must_zero (name ^ ": resume-vs-reference byte diffs") byte_diffs;
  must_zero (name ^ ": re-executed committed rows") reexecuted_committed;
  must_zero (name ^ ": determinism byte diffs") det_diffs;
  must_zero
    (name ^ ": determinism fired-log mismatch")
    (if det_log_equal then 0 else 1);
  Sys.remove store_path;
  (try Sys.remove (store_path ^ ".tmp") with Sys_error _ -> ());
  ( name,
    Obs.Jsonw.Obj
      [
        ("batch", Obs.Jsonw.Int batch);
        ("len", Obs.Jsonw.Int len);
        ("reference_sim_us", Obs.Jsonw.Float ref_us);
        ("crashed_sim_us", Obs.Jsonw.Float crash_us);
        ("resume_sim_us", Obs.Jsonw.Float resume_us);
        ( "recovery_overhead",
          Obs.Jsonw.Float (if ref_us > 0.0 then resume_us /. ref_us else 0.0) );
        ("store_commits_at_crash", Obs.Jsonw.Int crashed_commits);
        ("restored_rows", Obs.Jsonw.Int res_r.Runtime.Resilient.restored_rows);
        ( "replayed_rows",
          Obs.Jsonw.Int res_r.Runtime.Resilient.replayed_rows );
        ("torn_tail_on_reopen", Obs.Jsonw.Bool l.Runtime.Checkpoint_store.l_torn);
        ("retry_amplification", Obs.Jsonw.Float retry_amp);
        ("rows_lost", Obs.Jsonw.Int rows_lost);
        ("resume_byte_diffs", Obs.Jsonw.Int byte_diffs);
        ("reexecuted_committed_rows", Obs.Jsonw.Int reexecuted_committed);
        ( "deterministic",
          Obs.Jsonw.Bool (det_log_equal && det_diffs = 0) );
        ("store_reopen_ns", Obs.Jsonw.Float reopen_ns);
      ] )

let () =
  let out_path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_6.json"
  in
  Printf.printf "BENCH_6: chaos recovery, batch = %d, len = %d\n%!" batch len;
  let rows = List.map bench_scenario scenarios in
  let doc =
    Obs.Jsonw.Obj
      [
        ("bench", Obs.Jsonw.String "BENCH_6");
        ("generated_by", Obs.Jsonw.String "bench/bench_chaos.ml");
        ( "note",
          Obs.Jsonw.String
            "Crash/resume recovery under embedded chaos scenarios. Simulated \
             metrics and all invariant fields are deterministic; \
             store_reopen_ns is host wall-clock and varies by machine. \
             rows_lost, resume_byte_diffs and reexecuted_committed_rows must \
             be 0." );
        ("scenarios", Obs.Jsonw.Obj rows);
      ]
  in
  let oc = open_out out_path in
  Obs.Jsonw.to_channel ~pretty:true oc doc;
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n%!" out_path;
  if !failures > 0 then begin
    Printf.printf "BENCH_6: %d invariant violation(s)\n%!" !failures;
    exit 1
  end
