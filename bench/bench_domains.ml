(* Host-parallelism benchmark (BENCH_3): Bechamel wall-clock of the
   functional-mode MCScan at domain counts 1/2/4, plus the fp16 decode
   table against the historical [Float.pow]-based decoder it replaced.

   Emits BENCH_3.json (path overridable as argv.(1)). The simulated
   time is invariant under the domain count by construction — only the
   host wall-clock changes, and only when the machine actually has
   spare hardware threads: [host_cpus] is recorded so a single-CPU run
   (where domain parallelism can only add GC-synchronisation overhead)
   is distinguishable from a genuine multicore measurement. *)

let domain_counts = [ 1; 2; 4 ]
let scan_n = 1 lsl 18

let ols =
  Bechamel.Analyze.ols ~bootstrap:0 ~r_square:false
    ~predictors:[| Bechamel.Measure.run |]

let cfg =
  Bechamel.Benchmark.cfg ~limit:20 ~quota:(Bechamel.Time.second 0.5) ()

(* ns/run of one thunk via Bechamel's monotonic clock. *)
let time_ns name f =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage f) in
  let instance = Toolkit.Instance.monotonic_clock in
  let results = Benchmark.all cfg [ instance ] test in
  let analysis = Analyze.all ols instance results in
  let est = ref nan in
  Hashtbl.iter
    (fun _ result ->
      match Analyze.OLS.estimates result with
      | Some [ e ] -> est := e
      | _ -> ())
    analysis;
  !est

(* The pre-table fp16 decoder, inlined as the baseline for the LUT. *)
let reference_to_float h =
  let sign = if Ascend.Fp16.bits_sign h = 1 then -1.0 else 1.0 in
  let e = Ascend.Fp16.bits_exponent h in
  let m = Ascend.Fp16.bits_mantissa h in
  if e = 31 then if m = 0 then sign *. infinity else Float.nan
  else if e = 0 then sign *. float_of_int m *. 0x1p-24
  else sign *. float_of_int (m lor 0x400) *. Float.pow 2.0 (float_of_int (e - 25))

let bench_fp16 () =
  let sweep decode () =
    let acc = ref 0.0 in
    for bits = 0 to 0xFFFF do
      let v = decode bits in
      if not (Float.is_nan v) then acc := !acc +. v
    done;
    ignore (Sys.opaque_identity !acc)
  in
  let table_ns = time_ns "fp16_table_64k" (sweep Ascend.Fp16.to_float) in
  let reference_ns = time_ns "fp16_reference_64k" (sweep reference_to_float) in
  (table_ns, reference_ns)

let bench_mcscan domains =
  let d = Ascend.Device.create ~domains () in
  let data = Array.init scan_n (fun i -> if i mod 53 = 0 then 1.0 else 0.0) in
  let x = Ascend.Device.of_array d Ascend.Dtype.F16 ~name:"x" data in
  let _, st = Scan.Mcscan.run d x in
  let ns = time_ns (Printf.sprintf "mcscan_d%d" domains) (fun () ->
      ignore (Scan.Mcscan.run d x))
  in
  (ns, st)

let () =
  let out_path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_3.json" in
  let host_cpus = Domain.recommended_domain_count () in
  Printf.printf "BENCH_3: MCScan host wall-clock, n = %d, host CPUs = %d\n%!"
    scan_n host_cpus;
  let runs = List.map (fun dm -> (dm, bench_mcscan dm)) domain_counts in
  let base_ns =
    match runs with (_, (ns, _)) :: _ -> ns | [] -> assert false
  in
  List.iter
    (fun (dm, (ns, (st : Ascend.Stats.t))) ->
      Printf.printf
        "  domains=%d  %12.0f ns/run  speedup vs 1: %5.2fx  (sim %.3f us, \
         stats invariant)\n%!"
        dm ns (base_ns /. ns)
        (st.Ascend.Stats.seconds *. 1e6))
    runs;
  let table_ns, reference_ns = bench_fp16 () in
  Printf.printf
    "  fp16 decode 64k patterns: table %.0f ns, Float.pow reference %.0f ns \
     (%.2fx)\n%!"
    table_ns reference_ns (reference_ns /. table_ns);
  let oc = open_out out_path in
  let sim_us =
    match runs with (_, (_, st)) :: _ -> st.Ascend.Stats.seconds *. 1e6 | [] -> 0.0
  in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"bench\": \"BENCH_3\",\n";
  Printf.fprintf oc "  \"generated_by\": \"bench/bench_domains.ml\",\n";
  Printf.fprintf oc "  \"host_cpus\": %d,\n" host_cpus;
  Printf.fprintf oc "  \"note\": \"Host wall-clock of the functional MCScan \
                     simulation by domain count. Outputs and simulated stats \
                     are bit-identical across rows; host_speedup_vs_1 > 1 \
                     requires host_cpus > 1 (on a single-CPU host domain \
                     dispatch can only add overhead).\",\n";
  Printf.fprintf oc "  \"mcscan_n\": %d,\n" scan_n;
  Printf.fprintf oc "  \"mcscan_sim_us\": %.3f,\n" sim_us;
  Printf.fprintf oc "  \"mcscan\": [\n";
  List.iteri
    (fun i (dm, (ns, _)) ->
      Printf.fprintf oc
        "    { \"domains\": %d, \"ns_per_run\": %.0f, \
         \"host_speedup_vs_1\": %.3f }%s\n"
        dm ns (base_ns /. ns)
        (if i = List.length runs - 1 then "" else ","))
    runs;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc
    "  \"fp16_decode\": { \"table_ns_per_64k\": %.0f, \
     \"float_pow_reference_ns_per_64k\": %.0f, \"lut_speedup\": %.2f }\n"
    table_ns reference_ns (reference_ns /. table_ns);
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" out_path
