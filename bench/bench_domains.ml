(* Host-engine benchmark (BENCH_8): Bechamel wall-clock of the
   functional-mode MCScan at domain counts 1/2/4, plus before/after
   micro-benchmarks for the bulk host paths this engine replaced — the
   scalar get/set shim loop vs the dtype-specialized bulk kernel, and
   the branchy reference fp16 encoder vs the bias-add bit trick — and
   the fp16 decode table vs the historical [Float.pow] decoder.

   Emits BENCH_8.json (path overridable as the first non-flag
   argument). `--smoke` runs only the perf-gate subset (domains = 1,
   shorter quota) so CI can sample the hot path in a few seconds.

   The simulated time is invariant under the domain count by
   construction — only the host wall-clock changes, and only when the
   machine actually has spare hardware threads: [host_cpus] is
   recorded, and on a single-CPU host (where domain parallelism can
   only add GC-synchronisation overhead) the host-speedup assertion is
   skipped and flagged as "skipped_speedup_assertion" in the JSON.

   [calibration_ns] times a fixed pure-OCaml arithmetic loop; the
   perf gate normalises ns_per_run by it so a slower or faster CI
   machine does not register as a regression or mask one. *)

let scan_n = 1 lsl 18

(* The PR-7 baseline: BENCH_3.json's single-domain MCScan ns_per_run,
   measured before Bigarray storage / bulk kernels / batched charging.
   Kept verbatim so speedup_vs_bench3 is comparable across hosts only
   via the calibration loop, and meaningful directly on this one. *)
let baseline_bench3_ns_per_run = 24_879_493.0

let ols =
  Bechamel.Analyze.ols ~bootstrap:0 ~r_square:false
    ~predictors:[| Bechamel.Measure.run |]

(* ns/run of one thunk via Bechamel's monotonic clock. *)
let time_ns ~quota name f =
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Bechamel.Time.second quota) () in
  let test = Test.make ~name (Staged.stage f) in
  let instance = Toolkit.Instance.monotonic_clock in
  let results = Benchmark.all cfg [ instance ] test in
  let analysis = Analyze.all ols instance results in
  let est = ref nan in
  Hashtbl.iter
    (fun _ result ->
      match Analyze.OLS.estimates result with
      | Some [ e ] -> est := e
      | _ -> ())
    analysis;
  !est

(* Fixed pure-OCaml host-speed probe: integer/float arithmetic only,
   no allocation, no library calls. The perf gate divides ns_per_run
   by this to compare measurements taken on different machines. *)
let calibration () =
  let acc = ref 0.0 in
  for i = 0 to (1 lsl 16) - 1 do
    acc := !acc +. (float_of_int (i land 1023) *. 0.5) -. float_of_int (i lsr 7)
  done;
  ignore (Sys.opaque_identity !acc)

(* The pre-table fp16 decoder, inlined as the baseline for the LUT. *)
let reference_to_float h =
  let sign = if Ascend.Fp16.bits_sign h = 1 then -1.0 else 1.0 in
  let e = Ascend.Fp16.bits_exponent h in
  let m = Ascend.Fp16.bits_mantissa h in
  if e = 31 then if m = 0 then sign *. infinity else Float.nan
  else if e = 0 then sign *. float_of_int m *. 0x1p-24
  else sign *. float_of_int (m lor 0x400) *. Float.pow 2.0 (float_of_int (e - 25))

(* The pre-bit-trick fp16 encoder: branch on the f32 exponent class
   and round via float arithmetic, as [Fp16.of_float] did before the
   bias-add rewrite. Kept here as the before/after baseline. *)
let reference_of_float f =
  let g = Int32.float_of_bits (Int32.bits_of_float f) in
  let sign = if Float.sign_bit g then 0x8000 else 0 in
  if Float.is_nan g then sign lor 0x7E00
  else
    let a = Float.abs g in
    if a >= 65520.0 then sign lor 0x7C00
    else if a = 0.0 then sign
    else
      let m, e = Float.frexp a in
      ignore m;
      let rne scaled =
        let fl = Float.floor scaled in
        let rest = scaled -. fl in
        let k = int_of_float fl in
        if rest > 0.5 || (rest = 0.5 && k land 1 = 1) then k + 1 else k
      in
      if e - 1 >= -14 then begin
        (* Normal half range: scale so the integer part is the 11-bit
           significand, round to nearest even, re-normalise on
           overflow. *)
        let q = rne (Float.ldexp a (11 - e)) in
        let q, e = if q = 2048 then (1024, e + 1) else (q, e) in
        if e - 1 > 15 then sign lor 0x7C00
        else sign lor (((e - 1 + 15) lsl 10) lor (q land 0x3FF))
      end
      else begin
        let q = rne (Float.ldexp a 24) in
        if q >= 1024 then sign lor 0x400 else sign lor q
      end

let bench_fp16 ~quota () =
  let sweep decode () =
    let acc = ref 0.0 in
    for bits = 0 to 0xFFFF do
      let v = decode bits in
      if not (Float.is_nan v) then acc := !acc +. v
    done;
    ignore (Sys.opaque_identity !acc)
  in
  let table_ns = time_ns ~quota "fp16_table_64k" (sweep Ascend.Fp16.to_float) in
  let reference_ns =
    time_ns ~quota "fp16_reference_64k" (sweep reference_to_float)
  in
  (table_ns, reference_ns)

(* Before/after for the encode path: one pass over every finite half
   value (as doubles), encoded back to bits. *)
let bench_fp16_encode ~quota () =
  let values =
    Array.init 0x10000 (fun bits ->
        let v = Ascend.Fp16.to_float bits in
        if Float.is_nan v then 0.0 else v)
  in
  let sweep encode () =
    let acc = ref 0 in
    for i = 0 to Array.length values - 1 do
      acc := !acc lxor encode (Array.unsafe_get values i)
    done;
    ignore (Sys.opaque_identity !acc)
  in
  let bit_trick_ns =
    time_ns ~quota "fp16_encode_bit_trick_64k" (sweep Ascend.Fp16.of_float)
  in
  let reference_ns =
    time_ns ~quota "fp16_encode_reference_64k" (sweep reference_of_float)
  in
  (bit_trick_ns, reference_ns)

(* Before/after for the element-wise path: the scalar get/set shim
   loop (exactly what Vec.binop compiled to before the bulk engine)
   vs Host_buffer.map2_binop, both on one UB-sized fp16 tile. *)
let bench_bulk_map2 ~quota () =
  let len = 16384 in
  let mk () =
    let b = Ascend.Host_buffer.create Ascend.Dtype.F16 len in
    for i = 0 to len - 1 do
      Ascend.Host_buffer.set b i (float_of_int (i mod 97) *. 0.25)
    done;
    b
  in
  let a = mk () and b = mk () and d = Ascend.Host_buffer.create Ascend.Dtype.F16 len in
  let shim () =
    for i = 0 to len - 1 do
      Ascend.Host_buffer.set d i
        (Ascend.Host_buffer.get a i +. Ascend.Host_buffer.get b i)
    done
  in
  let bulk () =
    Ascend.Host_buffer.map2_binop Ascend.Host_buffer.Add ~src0:a ~src0_off:0
      ~src1:b ~src1_off:0 ~dst:d ~dst_off:0 ~len
  in
  let shim_ns = time_ns ~quota "map2_shim_16k" shim in
  let bulk_ns = time_ns ~quota "map2_bulk_16k" bulk in
  (len, shim_ns, bulk_ns)

let bench_mcscan ~quota domains =
  let d = Ascend.Device.create ~domains () in
  let data = Array.init scan_n (fun i -> if i mod 53 = 0 then 1.0 else 0.0) in
  let x = Ascend.Device.of_array d Ascend.Dtype.F16 ~name:"x" data in
  let y0, st = Scan.Mcscan.run d x in
  Ascend.Global_tensor.retire y0;
  (* Retiring [y] inside the thunk measures the steady state a real
     caller sees: output storage cycles through the buffer pool
     instead of accumulating fresh Bigarrays for the GC. *)
  let ns =
    time_ns ~quota
      (Printf.sprintf "mcscan_d%d" domains)
      (fun () ->
        let y, _ = Scan.Mcscan.run d x in
        Ascend.Global_tensor.retire y)
  in
  (ns, st)

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let out_path =
    let args =
      Array.to_list Sys.argv |> List.tl |> List.filter (( <> ) "--smoke")
    in
    match args with p :: _ -> p | [] -> "BENCH_8.json"
  in
  let quota = if smoke then 0.2 else 0.5 in
  let domain_counts = if smoke then [ 1 ] else [ 1; 2; 4 ] in
  let host_cpus = Domain.recommended_domain_count () in
  Printf.printf "BENCH_8%s: MCScan host wall-clock, n = %d, host CPUs = %d\n%!"
    (if smoke then " (smoke)" else "")
    scan_n host_cpus;
  let calibration_ns = time_ns ~quota "calibration_64k" calibration in
  Printf.printf "  calibration loop: %.0f ns\n%!" calibration_ns;
  let runs = List.map (fun dm -> (dm, bench_mcscan ~quota dm)) domain_counts in
  let base_ns =
    match runs with (_, (ns, _)) :: _ -> ns | [] -> assert false
  in
  let base_sim =
    match runs with (_, (_, st)) :: _ -> st.Ascend.Stats.seconds | [] -> 0.0
  in
  List.iter
    (fun (dm, (ns, (st : Ascend.Stats.t))) ->
      (* The simulated schedule must not depend on host parallelism. *)
      if st.Ascend.Stats.seconds <> base_sim then (
        Printf.eprintf
          "BENCH_8: simulated seconds changed with domains=%d (%.9g vs %.9g)\n"
          dm st.Ascend.Stats.seconds base_sim;
        exit 1);
      Printf.printf
        "  domains=%d  %12.0f ns/run  speedup vs 1: %5.2fx  (sim %.3f us, \
         stats invariant)\n%!"
        dm ns (base_ns /. ns)
        (st.Ascend.Stats.seconds *. 1e6))
    runs;
  let speedup_vs_bench3 = baseline_bench3_ns_per_run /. base_ns in
  Printf.printf "  vs BENCH_3 single-domain baseline (%.0f ns): %.2fx\n%!"
    baseline_bench3_ns_per_run speedup_vs_bench3;
  let skipped_speedup_assertion = host_cpus <= 1 in
  (if (not skipped_speedup_assertion) && not smoke then
     (* On a genuinely multicore host, at least one multi-domain row
        must beat the sequential engine. Single-CPU hosts skip this:
        there domain dispatch can only add overhead. *)
     let best =
       List.fold_left
         (fun acc (dm, (ns, _)) -> if dm > 1 then Float.min acc ns else acc)
         infinity runs
     in
     if best > base_ns then (
       Printf.eprintf
         "BENCH_8: no multi-domain speedup on a %d-CPU host (best %.0f ns vs \
          %.0f ns sequential)\n"
         host_cpus best base_ns;
       exit 1));
  let table_ns, dec_reference_ns = bench_fp16 ~quota () in
  Printf.printf
    "  fp16 decode 64k patterns: table %.0f ns, Float.pow reference %.0f ns \
     (%.2fx)\n%!"
    table_ns dec_reference_ns
    (dec_reference_ns /. table_ns);
  let enc_trick_ns, enc_reference_ns = bench_fp16_encode ~quota () in
  Printf.printf
    "  fp16 encode 64k values: bit trick %.0f ns, frexp reference %.0f ns \
     (%.2fx)\n%!"
    enc_trick_ns enc_reference_ns
    (enc_reference_ns /. enc_trick_ns);
  let map2_len, shim_ns, bulk_ns = bench_bulk_map2 ~quota () in
  Printf.printf
    "  map2 add fp16 x%d: scalar shim %.0f ns, bulk kernel %.0f ns (%.2fx)\n%!"
    map2_len shim_ns bulk_ns (shim_ns /. bulk_ns);
  let oc = open_out out_path in
  let sim_us = base_sim *. 1e6 in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"bench\": \"BENCH_8\",\n";
  Printf.fprintf oc "  \"generated_by\": \"bench/bench_domains.ml\",\n";
  Printf.fprintf oc "  \"smoke\": %b,\n" smoke;
  Printf.fprintf oc "  \"host_cpus\": %d,\n" host_cpus;
  Printf.fprintf oc "  \"skipped_speedup_assertion\": %b,\n"
    skipped_speedup_assertion;
  Printf.fprintf oc "  \"calibration_ns\": %.0f,\n" calibration_ns;
  Printf.fprintf oc "  \"note\": \"Host wall-clock of the functional MCScan \
                     simulation by domain count, with before/after micros for \
                     the bulk host engine. Outputs and simulated stats are \
                     bit-identical across rows; host_speedup_vs_1 > 1 \
                     requires host_cpus > 1 (on a single-CPU host domain \
                     dispatch can only add overhead). ns_per_run values are \
                     comparable across machines only after dividing by \
                     calibration_ns.\",\n";
  Printf.fprintf oc "  \"mcscan_n\": %d,\n" scan_n;
  Printf.fprintf oc "  \"mcscan_sim_us\": %.3f,\n" sim_us;
  Printf.fprintf oc "  \"baseline_bench3_ns_per_run\": %.0f,\n"
    baseline_bench3_ns_per_run;
  Printf.fprintf oc "  \"speedup_vs_bench3\": %.2f,\n" speedup_vs_bench3;
  Printf.fprintf oc "  \"mcscan\": [\n";
  List.iteri
    (fun i (dm, (ns, _)) ->
      Printf.fprintf oc
        "    { \"domains\": %d, \"ns_per_run\": %.0f, \
         \"host_speedup_vs_1\": %.3f }%s\n"
        dm ns (base_ns /. ns)
        (if i = List.length runs - 1 then "" else ","))
    runs;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc
    "  \"bulk_map2\": { \"len\": %d, \"scalar_shim_ns\": %.0f, \
     \"bulk_kernel_ns\": %.0f, \"bulk_speedup\": %.2f },\n"
    map2_len shim_ns bulk_ns (shim_ns /. bulk_ns);
  Printf.fprintf oc
    "  \"fp16_encode\": { \"bit_trick_ns_per_64k\": %.0f, \
     \"frexp_reference_ns_per_64k\": %.0f, \"bit_trick_speedup\": %.2f },\n"
    enc_trick_ns enc_reference_ns
    (enc_reference_ns /. enc_trick_ns);
  Printf.fprintf oc
    "  \"fp16_decode\": { \"table_ns_per_64k\": %.0f, \
     \"float_pow_reference_ns_per_64k\": %.0f, \"lut_speedup\": %.2f }\n"
    table_ns dec_reference_ns
    (dec_reference_ns /. table_ns);
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" out_path
