(* Profiler prediction benchmark (BENCH_10): does the critical-path
   profiler's structural "pipelined overlap" what-if, computed from a
   SERIAL trace alone, predict the measured serial -> triple MCScan
   improvement of BENCH_9?

   For each size: run MCScan under the Serial schedule with tracing,
   reconstruct the launch DAG from the trace JSON bytes
   (Critical_path.of_json on the exact Chrome export — no simulator
   state crosses over), re-time it under Whatif.Pipeline, and compare
   the predicted gain against the gain measured by actually running
   the Triple schedule. Everything is deterministic simulated cycles,
   so the gate is exact: the prediction must land within
   [tolerance_pts] percentage points of the measurement at every size,
   else exit 1.

   The measured quantity matches BENCH_9: sum of per-phase compute
   cycles (launch latency and SyncAll are schedule-invariant).

   Usage: bench_profile.exe [BENCH_10.json] [--tolerance-pts 5] *)

open Ascend

let sizes = [ 65536; 262144; 1048576 ]
let data n = Array.init n (fun i -> if i mod 37 = 0 then 1.0 else 0.0)

let compute_cycles (st : Stats.t) clock_hz =
  List.fold_left
    (fun acc (p : Stats.phase) -> acc +. (p.Stats.compute_seconds *. clock_hz))
    0.0 st.Stats.phases

let run_mcscan ~sched ~traced n =
  Scan.Scan_core.with_schedule sched (fun () ->
      let dev = Device.create () in
      if traced then ignore (Device.arm_trace dev);
      let clock_hz = (Device.cost dev).Cost_model.clock_hz in
      let x = Device.of_array dev Dtype.F16 ~name:"bx" (data n) in
      let st = snd (Scan.Mcscan.run dev x) in
      (compute_cycles st clock_hz, Device.trace dev))

type row = {
  n : int;
  serial_cycles : float;
  triple_cycles : float;
  predicted_cycles : float;
  measured_gain_pct : float;
  predicted_gain_pct : float;
}

let profile_of_trace tr =
  (* Round-trip through the actual bytes: the profiler must work from
     the trace file alone. *)
  let bytes = Obs.Chrome_trace.to_string tr in
  match Obs.Jsonw.parse bytes with
  | Error e -> failwith ("BENCH_10: trace JSON did not parse: " ^ e)
  | Ok doc -> (
      match Obs.Critical_path.of_json doc with
      | Error e -> failwith ("BENCH_10: profile failed: " ^ e)
      | Ok p -> p)

let run_rows () =
  List.map
    (fun n ->
      let serial_cycles, tr = run_mcscan ~sched:Scan.Scan_core.Serial ~traced:true n in
      let triple_cycles, _ = run_mcscan ~sched:Scan.Scan_core.Triple ~traced:false n in
      let p =
        profile_of_trace
          (match tr with
          | Some tr -> tr
          | None -> failwith "BENCH_10: serial run recorded no trace")
      in
      (* Cross-check: the profiler's reconstruction of the serial
         compute cycles must agree with the engine model. *)
      let reconstructed =
        Obs.Whatif.predict_compute_cycles p
          (Obs.Whatif.Speedup { label = "baseline"; queues = []; factor = 1.0 })
      in
      if Float.abs (reconstructed -. serial_cycles) > 0.5 then
        failwith
          (Printf.sprintf
             "BENCH_10: reconstructed serial compute %.1f <> measured %.1f"
             reconstructed serial_cycles);
      let predicted_cycles =
        Obs.Whatif.predict_compute_cycles p Obs.Whatif.Pipeline
      in
      {
        n;
        serial_cycles;
        triple_cycles;
        predicted_cycles;
        measured_gain_pct = 100.0 *. (1.0 -. (triple_cycles /. serial_cycles));
        predicted_gain_pct =
          100.0 *. (1.0 -. (predicted_cycles /. serial_cycles));
      })
    sizes

let json_of_rows rows ~tolerance_pts ~gate_ok =
  let b = Buffer.create 2048 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "{\n";
  pr "  \"bench\": \"profiler_prediction\",\n";
  pr "  \"metric\": \"predicted vs measured serial->triple mcscan gain (pct \
      of serial compute cycles)\",\n";
  pr "  \"tolerance_pts\": %g,\n" tolerance_pts;
  pr "  \"gate_ok\": %b,\n" gate_ok;
  pr "  \"rows\": [\n";
  let n_rows = List.length rows in
  List.iteri
    (fun i r ->
      pr
        "    {\"kernel\": \"mcscan\", \"n\": %d, \"serial_cycles\": %.0f, \
         \"triple_cycles\": %.0f, \"predicted_cycles\": %.0f, \
         \"measured_gain_pct\": %.2f, \"predicted_gain_pct\": %.2f, \
         \"delta_pts\": %.2f}%s\n"
        r.n r.serial_cycles r.triple_cycles r.predicted_cycles
        r.measured_gain_pct r.predicted_gain_pct
        (Float.abs (r.predicted_gain_pct -. r.measured_gain_pct))
        (if i = n_rows - 1 then "" else ","))
    rows;
  pr "  ]\n}\n";
  Buffer.contents b

let () =
  let args = Array.to_list Sys.argv in
  let rec parse out tol = function
    | [] -> (out, tol)
    | "--tolerance-pts" :: v :: rest -> parse out (float_of_string v) rest
    | a :: rest when String.length a > 0 && a.[0] <> '-' -> parse (Some a) tol rest
    | a :: _ -> failwith ("bench_profile: unknown argument " ^ a)
  in
  let out, tolerance_pts = parse None 5.0 (List.tl args) in
  let rows = run_rows () in
  List.iter
    (fun r ->
      Printf.printf
        "mcscan n=%7d: serial %8.0f cy, triple %8.0f cy (measured %.1f%%), \
         predicted %8.0f cy (%.1f%%), delta %.1f pts\n"
        r.n r.serial_cycles r.triple_cycles r.measured_gain_pct
        r.predicted_cycles r.predicted_gain_pct
        (Float.abs (r.predicted_gain_pct -. r.measured_gain_pct)))
    rows;
  let gate_ok =
    List.for_all
      (fun r ->
        Float.abs (r.predicted_gain_pct -. r.measured_gain_pct)
        <= tolerance_pts)
      rows
  in
  let doc = json_of_rows rows ~tolerance_pts ~gate_ok in
  (match out with
  | Some path ->
      let oc = open_out path in
      output_string oc doc;
      close_out oc;
      Printf.printf "wrote %s\n" path
  | None -> print_string doc);
  if not gate_ok then begin
    Printf.printf
      "GATE FAILED: profiler prediction off by more than %g points\n"
      tolerance_pts;
    exit 1
  end;
  Printf.printf "gate ok: prediction within %g points at every size\n"
    tolerance_pts
