(* LLM token sampling: the workload that motivates the paper's
   operators. Builds a softmax over raw logits entirely out of device
   kernels (exp map, MCScan for the normaliser, scale map), then draws
   tokens with top-p (nucleus) sampling — 17 scans per draw — and with
   plain weighted sampling, comparing against the stock operators.

   Run with: dune exec examples/llm_sampling.exe *)

open Ascend

let vocab = 32768 (* a Llama-2-ish vocabulary, power of two for the baseline *)

(* softmax(logits) computed on-device: shifted exp pass (the usual
   max-subtraction keeps fp16 from overflowing), scan for the sum,
   scale pass. fp16 throughout, like inference servers run it. *)
let device_softmax device ~max_logit logits =
  let n = Global_tensor.length logits in
  let exps = Device.alloc device Dtype.F16 n ~name:"exps" in
  let st_exp =
    Ops.Map_kernel.run ~name:"softmax_exp" device ~inputs:[ logits ]
      ~output:exps
      ~f:(fun ctx ~vec ~ins ~out ~scratch:_ ~len ->
        match ins with
        | [ src ] ->
            Vec.adds ctx ~vec ~src ~dst:out ~scalar:(-.max_logit) ~len ();
            Vec.exp ctx ~vec ~src:out ~dst:out ~len ()
        | _ -> assert false)
  in
  let cdf, st_scan = Scan.Mcscan.run device exps in
  let total = Global_tensor.get cdf (n - 1) in
  let probs = Device.alloc device Dtype.F16 n ~name:"probs" in
  let st_scale =
    Ops.Map_kernel.run ~name:"softmax_scale" device ~inputs:[ exps ]
      ~output:probs
      ~f:(fun ctx ~vec ~ins ~out ~scratch:_ ~len ->
        match ins with
        | [ src ] ->
            Vec.muls ctx ~vec ~src ~dst:out ~scalar:(1.0 /. total) ~len ()
        | _ -> assert false)
  in
  (probs, Stats.combine ~name:"softmax" [ st_exp; st_scan; st_scale ])

let () =
  let device = Device.create () in
  (* Peaked logits: a realistic next-token distribution. *)
  let logits_data =
    let rng = Random.State.make [| 2024 |] in
    Array.init vocab (fun _ ->
        let u = Random.State.float rng 1.0 in
        Fp16.round (8.0 *. u *. u))
  in
  let logits = Device.of_array device Dtype.F16 ~name:"logits" logits_data in

  let max_logit = Array.fold_left Float.max neg_infinity logits_data in
  let probs, st_softmax = device_softmax device ~max_logit logits in
  Format.printf "device softmax:   %a@." Stats.pp_summary st_softmax;

  (* Draw a few nucleus samples with different uniform draws. *)
  Format.printf "@.top-p sampling (p = 0.9), radix sort + MCScan:@.";
  List.iter
    (fun theta ->
      let r = Ops.Topp.sample device ~probs ~p:0.9 ~theta in
      match r.Ops.Topp.token with
      | Some tok ->
          Format.printf
            "  theta=%.2f -> token %6d (prob %.5f, nucleus %d tokens, %.0f us \
             simulated)@."
            theta tok
            (Global_tensor.get probs tok)
            r.Ops.Topp.kept
            (r.Ops.Topp.stats.Stats.seconds *. 1e6)
      | None -> assert false)
    [ 0.05; 0.35; 0.65; 0.95 ];

  (* The same pipeline over the stock operators, for comparison. *)
  let b = Ops.Topp.sample_baseline device ~probs ~p:0.9 ~theta:0.35 in
  Format.printf "stock pipeline (torch.sort + torch.cumsum): %.0f us simulated@."
    (b.Ops.Topp.stats.Stats.seconds *. 1e6);

  (* Plain weighted sampling: unlike torch.multinomial, the support
     size is unbounded (here it is small, but see Section 5). *)
  Format.printf "@.weighted sampling:@.";
  List.iter
    (fun theta ->
      let tok, st = Ops.Weighted_sampling.sample device ~weights:probs ~theta in
      Format.printf "  theta=%.2f -> token %6d (%.0f us simulated)@." theta tok
        (st.Stats.seconds *. 1e6))
    [ 0.25; 0.75 ];

  (* And top-k for greedy-ish decoding. *)
  let topk, st = Ops.Baseline.topk device probs ~k:5 in
  Format.printf "@.top-5 probabilities (stock streaming top-k, %.0f us):@  "
    (st.Stats.seconds *. 1e6);
  for i = 0 to 4 do
    Format.printf "%.5f " (Global_tensor.get topk i)
  done;
  Format.printf "@."
