examples/llm_sampling.ml: Array Ascend Device Dtype Float Format Fp16 Global_tensor List Ops Random Scan Stats Vec
