examples/stream_compaction.ml: Ascend Device Dtype Format Global_tensor Ops Option Stats Vec Workload
