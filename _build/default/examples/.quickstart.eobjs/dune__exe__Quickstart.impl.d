examples/quickstart.ml: Array Ascend Device Dtype Format Fp16 Global_tensor List Scan Stats
