examples/llm_sampling.mli:
