examples/sort_pipeline.ml: Array Ascend Device Dtype Format Fp16 Global_tensor Ops Option Stats
