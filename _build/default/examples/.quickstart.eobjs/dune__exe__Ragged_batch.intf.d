examples/ragged_batch.mli:
