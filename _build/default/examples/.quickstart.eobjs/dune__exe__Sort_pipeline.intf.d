examples/sort_pipeline.mli:
