examples/ragged_batch.ml: Array Ascend Device Dtype Format Fp16 Global_tensor Random Scan Stats
