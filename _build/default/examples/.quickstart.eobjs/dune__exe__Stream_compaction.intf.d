examples/stream_compaction.mli:
