examples/quickstart.mli:
