(* Ragged (variable-length) batches: the segmented-scan extension.

   LLM serving batches sequences of different lengths into one flat
   buffer. A segmented scan computes per-sequence prefix sums (here:
   cumulative attention mass per sequence) in one launch, without
   padding to the longest sequence; the cube reduction then gives the
   grand total, reading the data once with the vector cores left free.

   Run with: dune exec examples/ragged_batch.exe *)

open Ascend

let () =
  let device = Device.create () in
  let rng = Random.State.make [| 7 |] in

  (* 32 sequences with lengths between 100 and 1800, flattened (short
     enough that per-sequence integer sums stay exact in fp16). *)
  let lengths = Array.init 32 (fun _ -> 100 + Random.State.int rng 1700) in
  let n = Array.fold_left ( + ) 0 lengths in
  let flags = Array.make n 0.0 in
  let _ =
    Array.fold_left
      (fun off len ->
        flags.(off) <- 1.0;
        off + len)
      0 lengths
  in
  (* Per-token scores in {0, 1}: exact in fp16 at these lengths. *)
  let scores =
    Array.init n (fun _ -> float_of_int (Random.State.int rng 2))
  in
  let x = Device.of_array device Dtype.F16 ~name:"scores" scores in
  let f = Device.of_array device Dtype.I8 ~name:"starts" flags in

  Format.printf "%d sequences, %d tokens total (min %d, max %d)@."
    (Array.length lengths) n
    (Array.fold_left min max_int lengths)
    (Array.fold_left max 0 lengths);

  (* One launch scans every sequence independently. *)
  let y, stats = Scan.Segmented_scan.run device ~x ~flags:f () in
  Format.printf "segmented scan:  %a@." Stats.pp_summary stats;

  (* Per-sequence totals are the scan values at each sequence end. *)
  let off = ref 0 in
  Array.iteri
    (fun i len ->
      off := !off + len;
      if i < 4 then
        Format.printf "  seq %d (len %4d): total %.0f@." i len
          (Global_tensor.get y (!off - 1)))
    lengths;

  (* Validate against the host oracle. *)
  let acc = ref 0.0 and ok = ref true in
  for i = 0 to n - 1 do
    if flags.(i) <> 0.0 then acc := 0.0;
    acc := Fp16.round (!acc +. scores.(i));
    if Global_tensor.get y i <> !acc then ok := false
  done;
  Format.printf "oracle check: %s@." (if !ok then "ok" else "MISMATCH");

  (* Grand total via the matmul-only reduction vs the vector one. *)
  let t_cube, _, st_cube = Scan.Cube_reduce.run_cube device x in
  let t_vec, _, st_vec = Scan.Cube_reduce.run_vec device x in
  Format.printf "@.cube reduction:  total %.1f (%a)@." t_cube Stats.pp_summary
    st_cube;
  Format.printf "vec reduction:   total %.1f (%a)@." t_vec Stats.pp_summary
    st_vec;

  (* Running max of scores across the whole stream. *)
  let m, st_max = Scan.Max_scan.run device x in
  Format.printf "@.running max reaches %.1f by index %d (%a)@."
    (Global_tensor.get m (n - 1))
    (let rec find i =
       if Global_tensor.get m i = Global_tensor.get m (n - 1) then i
       else find (i + 1)
     in
     find 0)
    Stats.pp_summary st_max
