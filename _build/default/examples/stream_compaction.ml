(* Stream compaction (masked_select): keep the activations above a
   threshold. Shows the mask pass, the scan-based compress operator,
   its exact agreement with the scalar-unit stock operator, and the
   performance gap between them.

   Run with: dune exec examples/stream_compaction.exe *)

open Ascend

let () =
  let device = Device.create () in
  let n = 500_000 in
  let data = Workload.Generators.uniform_f16 ~seed:42 ~lo:(-1.0) ~hi:1.0 n in
  let x = Device.of_array device Dtype.F16 ~name:"activations" data in

  (* Build the int8 mask on-device: mask.(i) = activations.(i) > 0.5. *)
  let threshold = 0.5 in
  let mask = Device.alloc device Dtype.I8 n ~name:"mask" in
  let st_mask =
    Ops.Map_kernel.run ~name:"threshold" device ~inputs:[ x ] ~output:mask
      ~f:(fun ctx ~vec ~ins ~out ~scratch:_ ~len ->
        match ins with
        | [ src ] ->
            Vec.compare_scalar ctx ~vec Vec.Gt ~src ~dst:out ~scalar:threshold
              ~len ()
        | _ -> assert false)
  in
  Format.printf "mask pass:        %a@." Stats.pp_summary st_mask;

  (* Scan-based compress (the paper's operator). *)
  let r = Ops.Compress.run device ~x ~mask () in
  Format.printf "compress:         %a@." Stats.pp_summary r.Ops.Compress.stats;
  Format.printf "kept %d of %d elements (%.1f%%)@." r.Ops.Compress.count n
    (100.0 *. float_of_int r.Ops.Compress.count /. float_of_int n);

  (* The stock scalar-unit masked_select agrees element for element. *)
  let bv, bcount, st_base = Ops.Baseline.masked_select device ~x ~mask in
  Format.printf "masked_select:    %a@." Stats.pp_summary st_base;
  assert (bcount = r.Ops.Compress.count);
  for i = 0 to bcount - 1 do
    assert (Global_tensor.get bv i = Global_tensor.get r.Ops.Compress.values i)
  done;
  Format.printf "outputs identical; compress is %.0fx faster (simulated)@."
    (st_base.Stats.seconds /. r.Ops.Compress.stats.Stats.seconds);

  (* SplitInd keeps both sides: the kept elements first, the rest after,
     in stable order, with the source index of every output element. *)
  let s = Ops.Split.run ~with_indices:true device ~x ~flags:mask () in
  let gi = Option.get s.Ops.Split.indices in
  Format.printf
    "@.splitind: first kept element x[%d]=%.3f, first dropped x[%d]=%.3f@."
    (int_of_float (Global_tensor.get gi 0))
    (Global_tensor.get s.Ops.Split.values 0)
    (int_of_float (Global_tensor.get gi s.Ops.Split.true_count))
    (Global_tensor.get s.Ops.Split.values s.Ops.Split.true_count)
