(* Sorting with matrix multiplications: the radix sort whose parallel
   splits run on the cube units. Demonstrates the PyTorch-style
   (values, indices) API, stability, float handling through the
   order-preserving encode, and the low-bit-width ablation.

   Run with: dune exec examples/sort_pipeline.exe *)

open Ascend

let () =
  let device = Device.create () in
  let n = 1 lsl 16 in

  (* fp16 keys with duplicates and negatives. *)
  let keys =
    Array.init n (fun i ->
        Fp16.round (float_of_int ((i * 2654435761) land 1023) /. 16.0 -. 32.0))
  in
  let x = Device.of_array device Dtype.F16 ~name:"keys" keys in

  (* Ascending argsort: values plus the index every element came from. *)
  let r = Ops.Radix_sort.run ~with_indices:true device x in
  let gi = Option.get r.Ops.Radix_sort.indices in
  Format.printf "radix sort (16 cube-split passes): %a@." Stats.pp_summary
    r.Ops.Radix_sort.stats;
  Format.printf "min %.3f (from index %d), max %.3f (from index %d)@."
    (Global_tensor.get r.Ops.Radix_sort.values 0)
    (int_of_float (Global_tensor.get gi 0))
    (Global_tensor.get r.Ops.Radix_sort.values (n - 1))
    (int_of_float (Global_tensor.get gi (n - 1)));

  (* Verify: sorted, and a stable permutation of the input. *)
  let prev = ref neg_infinity in
  for i = 0 to n - 1 do
    let v = Global_tensor.get r.Ops.Radix_sort.values i in
    assert (v >= !prev);
    assert (keys.(int_of_float (Global_tensor.get gi i)) = v);
    prev := v
  done;
  Format.printf "verified: sorted and index-consistent@.";

  (* Stability: among equal keys, source indices stay increasing. *)
  let stable = ref true in
  for i = 1 to n - 1 do
    if
      Global_tensor.get r.Ops.Radix_sort.values (i - 1)
      = Global_tensor.get r.Ops.Radix_sort.values i
      && Global_tensor.get gi (i - 1) >= Global_tensor.get gi i
    then stable := false
  done;
  Format.printf "stability among %d duplicates: %s@."
    (n - 1024)
    (if !stable then "ok" else "BROKEN");

  (* Descending order uses a complemented encoding, not a reverse pass. *)
  let rd = Ops.Radix_sort.run ~descending:true device x in
  Format.printf "descending head: %.3f %.3f %.3f@."
    (Global_tensor.get rd.Ops.Radix_sort.values 0)
    (Global_tensor.get rd.Ops.Radix_sort.values 1)
    (Global_tensor.get rd.Ops.Radix_sort.values 2);

  (* The stock torch.sort (bitonic) gives the same values. *)
  let b, st_base = Ops.Baseline.sort device x in
  for i = 0 to n - 1 do
    assert (Global_tensor.get b i = Global_tensor.get r.Ops.Radix_sort.values i)
  done;
  Format.printf "torch.sort agrees: %a@." Stats.pp_summary st_base;

  (* Low-bit-width keys sort proportionally faster (Section 6.3): the
     pass count equals the key width. *)
  let small =
    Device.of_array device Dtype.U16 ~name:"bytes"
      (Array.init n (fun i -> float_of_int ((i * 131) land 0xFF)))
  in
  let r16 = Ops.Radix_sort.run ~bits:16 device small in
  let r8 = Ops.Radix_sort.run ~bits:8 device small in
  Format.printf
    "u16 keys that fit 8 bits: 16 passes %.0f us vs 8 passes %.0f us (%.2fx)@."
    (r16.Ops.Radix_sort.stats.Stats.seconds *. 1e6)
    (r8.Ops.Radix_sort.stats.Stats.seconds *. 1e6)
    (r16.Ops.Radix_sort.stats.Stats.seconds
    /. r8.Ops.Radix_sort.stats.Stats.seconds)
