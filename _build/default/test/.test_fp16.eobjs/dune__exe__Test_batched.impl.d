test/test_batched.ml: Alcotest Array Ascend Device Dtype Fp16 Global_tensor List Printf Scan
