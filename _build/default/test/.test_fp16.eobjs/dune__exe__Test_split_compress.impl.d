test/test_split_compress.ml: Alcotest Array Ascend Device Dtype Global_tensor List Ops Printf Scan Stats Workload
