test/test_scans.ml: Alcotest Array Ascend Device Dtype Fp16 Global_tensor List Printf Scan Stats
