test/test_const_reference.mli:
