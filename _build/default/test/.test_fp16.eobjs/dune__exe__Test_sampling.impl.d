test/test_sampling.ml: Alcotest Array Ascend Device Dtype Float Global_tensor List Ops Printf Scan Stats Workload
