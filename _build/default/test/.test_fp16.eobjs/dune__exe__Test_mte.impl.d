test/test_mte.ml: Alcotest Array Ascend Block Cost_model Device Dtype Engine Float Global_tensor List Local_tensor Mem_kind Mte Scan
