test/test_dtype.ml: Alcotest Ascend Dtype Float List QCheck QCheck_alcotest String
