test/test_engine_mem.ml: Alcotest Ascend Engine List Mem_kind
