test/test_topk.ml: Alcotest Array Ascend Device Dtype Global_tensor Ops Scan Stats Workload
