test/test_fp16.ml: Alcotest Ascend Float Fp16 List QCheck QCheck_alcotest
