test/test_fp16.mli:
