test/test_ops_extra.mli:
