test/test_const_reference.ml: Alcotest Array Ascend List Printf Scan
