test/test_ops_extra.ml: Alcotest Array Ascend Block Device Dtype Float Fp16 Global_tensor List Local_tensor Mem_kind Ops Printf Scalar_unit Stats Vec Workload
