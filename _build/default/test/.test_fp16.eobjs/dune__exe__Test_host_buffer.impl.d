test/test_host_buffer.ml: Alcotest Array Ascend Dtype Host_buffer
