test/test_properties.ml: Alcotest Array Ascend Device Dtype Float Fp16 Fun Global_tensor List Ops Option QCheck QCheck_alcotest Scan
