test/test_reduce_maxscan.ml: Alcotest Array Ascend Device Dtype Float Global_tensor List Ops Printf Random Scan Stats
