test/test_engine_mem.mli:
