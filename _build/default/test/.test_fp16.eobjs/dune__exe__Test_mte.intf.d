test/test_mte.mli:
