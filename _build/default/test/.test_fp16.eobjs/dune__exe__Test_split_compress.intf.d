test/test_split_compress.mli:
