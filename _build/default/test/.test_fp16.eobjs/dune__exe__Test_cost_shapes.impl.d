test/test_cost_shapes.ml: Alcotest Ascend Device Dtype Ops Printf Scan Stats Workload
