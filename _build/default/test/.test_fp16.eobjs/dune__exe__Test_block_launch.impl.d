test/test_block_launch.ml: Alcotest Ascend Block Cost_model Device Dtype Engine Global_tensor Launch List Local_tensor Mem_kind Stats
