test/test_cube.ml: Alcotest Array Ascend Block Cost_model Cube Device Dtype Local_tensor Mem_kind Printf Scan
