test/test_reduce_maxscan.mli:
