test/test_host_buffer.mli:
