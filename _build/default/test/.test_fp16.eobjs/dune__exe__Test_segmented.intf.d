test/test_segmented.mli:
