test/test_dtype.mli:
