test/test_cost_shapes.mli:
