test/test_vec.ml: Alcotest Array Ascend Block Device Dtype Engine Fp16 Local_tensor Mem_kind Scan Stdlib Vec
