test/test_batched.mli:
