test/test_scans.mli:
