test/test_segmented.ml: Alcotest Array Ascend Block Device Dtype Float Global_tensor List Local_tensor Mem_kind Printf Random Scan Vec
