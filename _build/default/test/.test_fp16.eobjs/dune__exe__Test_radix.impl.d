test/test_radix.ml: Alcotest Array Ascend Device Dtype Global_tensor List Ops Option Scan Stats Workload
