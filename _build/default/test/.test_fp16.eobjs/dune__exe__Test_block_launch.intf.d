test/test_block_launch.mli:
