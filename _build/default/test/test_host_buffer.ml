(* Unit tests of the dtype-faithful host buffers. *)

open Ascend

let check_float = Alcotest.(check (float 0.0))
let check_int = Alcotest.(check int)

let test_create_and_access () =
  let b = Host_buffer.create Dtype.F16 10 in
  check_int "length" 10 (Host_buffer.length b);
  check_int "bytes" 20 (Host_buffer.size_bytes b);
  check_float "zero init" 0.0 (Host_buffer.get b 5);
  Host_buffer.set b 3 1.5;
  check_float "set/get" 1.5 (Host_buffer.get b 3)

let test_rounding_on_set () =
  let b = Host_buffer.create Dtype.F16 2 in
  Host_buffer.set b 0 2049.0;
  check_float "f16 rounded" 2048.0 (Host_buffer.get b 0);
  let bi = Host_buffer.create Dtype.I8 2 in
  Host_buffer.set bi 0 200.0;
  check_float "i8 wrapped" (-56.0) (Host_buffer.get bi 0)

let test_bounds () =
  let b = Host_buffer.create Dtype.F32 4 in
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "index out of bounds") (fun () ->
      ignore (Host_buffer.get b 4));
  Alcotest.check_raises "negative length"
    (Invalid_argument "Host_buffer.create: negative length") (fun () ->
      ignore (Host_buffer.create Dtype.F32 (-1)))

let test_blit_same_dtype () =
  let a = Host_buffer.of_array Dtype.F16 [| 1.0; 2.0; 3.0; 4.0 |] in
  let b = Host_buffer.create Dtype.F16 4 in
  Host_buffer.blit ~src:a ~src_off:1 ~dst:b ~dst_off:0 ~len:3;
  check_float "blit0" 2.0 (Host_buffer.get b 0);
  check_float "blit2" 4.0 (Host_buffer.get b 2);
  check_float "untouched" 0.0 (Host_buffer.get b 3)

let test_blit_cast () =
  (* F32 -> F16 blit must round; F16 -> I8 must truncate/wrap. *)
  let a = Host_buffer.of_array Dtype.F32 [| 2049.0; 1.5 |] in
  let b = Host_buffer.create Dtype.F16 2 in
  Host_buffer.blit ~src:a ~src_off:0 ~dst:b ~dst_off:0 ~len:2;
  check_float "rounded" 2048.0 (Host_buffer.get b 0);
  check_float "exact" 1.5 (Host_buffer.get b 1);
  let c = Host_buffer.create Dtype.I8 2 in
  Host_buffer.blit ~src:b ~src_off:0 ~dst:c ~dst_off:0 ~len:2;
  check_float "truncated" 1.0 (Host_buffer.get c 1)

let test_blit_bounds () =
  let a = Host_buffer.create Dtype.F16 4 in
  let b = Host_buffer.create Dtype.F16 4 in
  Alcotest.check_raises "overrun"
    (Invalid_argument "Host_buffer.blit: range out of bounds") (fun () ->
      Host_buffer.blit ~src:a ~src_off:2 ~dst:b ~dst_off:0 ~len:3)

let test_fill_copy_roundtrip () =
  let a = Host_buffer.create Dtype.F16 8 in
  Host_buffer.fill a 2049.0;
  check_float "fill rounds" 2048.0 (Host_buffer.get a 7);
  let b = Host_buffer.copy a in
  Host_buffer.set b 0 1.0;
  check_float "copy is deep" 2048.0 (Host_buffer.get a 0);
  let arr = Host_buffer.to_array a in
  check_int "to_array length" 8 (Array.length arr);
  check_float "to_array value" 2048.0 arr.(3)

let test_set_cast () =
  let b = Host_buffer.create Dtype.I16 1 in
  Host_buffer.set_cast b 0 ~from:Dtype.F32 7.9;
  check_float "cast truncates" 7.0 (Host_buffer.get b 0)

let () =
  Alcotest.run "host_buffer"
    [
      ( "buffer",
        [
          Alcotest.test_case "create/access" `Quick test_create_and_access;
          Alcotest.test_case "rounding on set" `Quick test_rounding_on_set;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "blit same dtype" `Quick test_blit_same_dtype;
          Alcotest.test_case "blit cast" `Quick test_blit_cast;
          Alcotest.test_case "blit bounds" `Quick test_blit_bounds;
          Alcotest.test_case "fill/copy/to_array" `Quick
            test_fill_copy_roundtrip;
          Alcotest.test_case "set_cast" `Quick test_set_cast;
        ] );
    ]
