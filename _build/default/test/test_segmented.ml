(* Integration tests of the segmented scan (and the in-UB network
   helpers it is built from). *)

open Ascend

let check_bool = Alcotest.(check bool)

(* Host oracle. *)
let segmented_oracle x flags =
  let n = Array.length x in
  let y = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    if flags.(i) <> 0.0 then acc := 0.0;
    acc := !acc +. x.(i);
    y.(i) <- !acc
  done;
  y

let run_case ~name x flags =
  let dev = Device.create () in
  let xt = Device.of_array dev Dtype.F16 ~name:"x" x in
  let ft = Device.of_array dev Dtype.I8 ~name:"f" flags in
  let y, stats = Scan.Segmented_scan.run dev ~x:xt ~flags:ft () in
  let expect = segmented_oracle x flags in
  Array.iteri
    (fun i e ->
      if Global_tensor.get y i <> e then
        Alcotest.failf "%s: mismatch at %d (%g <> %g)" name i
          (Global_tensor.get y i) e)
    expect;
  stats

(* Exact fp16 data: values in {-1, 0, 1}; segments short enough that
   every partial stays well inside the exact integer range. *)
let values ~seed n =
  let rng = Random.State.make [| seed |] in
  Array.init n (fun _ -> float_of_int (Random.State.int rng 3 - 1))

let seg_flags ~seed ~avg_len n =
  let rng = Random.State.make [| seed |] in
  Array.init n (fun i ->
      if i = 0 || Random.State.int rng avg_len = 0 then 1.0 else 0.0)

let test_basic_shapes () =
  List.iter
    (fun (n, avg) ->
      ignore
        (run_case
           ~name:(Printf.sprintf "n=%d avg=%d" n avg)
           (values ~seed:n n)
           (seg_flags ~seed:(n + 1) ~avg_len:avg n)))
    [ (1, 1); (100, 5); (8192, 40); (8193, 7); (30000, 100); (50000, 3) ]

let test_single_segment_equals_scan () =
  let n = 20000 in
  let x = Array.init n (fun i -> if i mod 37 = 0 then 1.0 else 0.0) in
  let flags = Array.make n 0.0 in
  flags.(0) <- 1.0;
  let dev = Device.create () in
  let xt = Device.of_array dev Dtype.F16 ~name:"x" x in
  let ft = Device.of_array dev Dtype.I8 ~name:"f" flags in
  let y, _ = Scan.Segmented_scan.run dev ~x:xt ~flags:ft () in
  let plain, _ = Scan.Mcscan.run dev xt in
  for i = 0 to n - 1 do
    if Global_tensor.get y i <> Global_tensor.get plain i then
      Alcotest.failf "diverges from plain scan at %d" i
  done

let test_all_boundaries_is_identity () =
  let n = 5000 in
  let x = values ~seed:9 n in
  let flags = Array.make n 1.0 in
  let dev = Device.create () in
  let xt = Device.of_array dev Dtype.F16 ~name:"x" x in
  let ft = Device.of_array dev Dtype.I8 ~name:"f" flags in
  let y, _ = Scan.Segmented_scan.run dev ~x:xt ~flags:ft () in
  for i = 0 to n - 1 do
    if Global_tensor.get y i <> x.(i) then Alcotest.failf "not identity at %d" i
  done

let test_boundary_at_tile_edges () =
  (* Boundaries exactly at 8192-tile and sub-block edges; sparse ones
     keep every segment sum exactly representable in fp16. *)
  let n = 3 * 8192 in
  let x = Array.init n (fun i -> if i mod 5 = 0 then 1.0 else 0.0) in
  let flags = Array.make n 0.0 in
  flags.(0) <- 1.0;
  flags.(8191) <- 1.0;
  flags.(8192) <- 1.0;
  flags.(16384) <- 1.0;
  ignore (run_case ~name:"tile edges" x flags)

let test_implicit_first_segment () =
  (* flags.(0) = 0 must still behave as a segment start. *)
  let n = 1000 in
  let x = Array.make n 1.0 in
  let flags = Array.make n 0.0 in
  flags.(500) <- 1.0;
  let dev = Device.create () in
  let xt = Device.of_array dev Dtype.F16 ~name:"x" x in
  let ft = Device.of_array dev Dtype.I8 ~name:"f" flags in
  let y, _ = Scan.Segmented_scan.run dev ~x:xt ~flags:ft () in
  check_bool "prefix before flag" true (Global_tensor.get y 499 = 500.0);
  check_bool "restart at flag" true (Global_tensor.get y 500 = 1.0)

let test_validation () =
  let dev = Device.create () in
  let x = Device.of_array dev Dtype.F16 ~name:"x" [| 1.0 |] in
  let f2 = Device.of_array dev Dtype.I8 ~name:"f" [| 1.0; 0.0 |] in
  check_bool "length mismatch" true
    (try
       ignore (Scan.Segmented_scan.run dev ~x ~flags:f2 ());
       false
     with Invalid_argument _ -> true)

(* The in-UB Hillis-Steele helpers. *)

let test_hillis_steele_add_max () =
  let dev = Device.create () in
  let ctx = Block.make ~device:dev ~idx:0 ~num_blocks:1 in
  let n = 100 in
  let buf = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F32 n in
  let tmp = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F32 n in
  let data = Array.init n (fun i -> float_of_int ((i * 7 mod 5) - 2)) in
  Array.iteri (fun i v -> Local_tensor.set buf i v) data;
  Scan.Kernel_util.hillis_steele_tile ctx ~vec:0 ~op:Vec.Add ~buf ~tmp ~len:n;
  let expect = Scan.Reference.inclusive_scan data in
  for i = 0 to n - 1 do
    if Local_tensor.get buf i <> expect.(i) then
      Alcotest.failf "hs add mismatch at %d" i
  done;
  Array.iteri (fun i v -> Local_tensor.set buf i v) data;
  Scan.Kernel_util.hillis_steele_tile ctx ~vec:0 ~op:Vec.Max ~buf ~tmp ~len:n;
  let acc = ref neg_infinity in
  for i = 0 to n - 1 do
    acc := Float.max !acc data.(i);
    if Local_tensor.get buf i <> !acc then
      Alcotest.failf "hs max mismatch at %d" i
  done

let test_segmented_network_tile () =
  let dev = Device.create () in
  let ctx = Block.make ~device:dev ~idx:0 ~num_blocks:1 in
  let n = 257 in
  let ub dt = Block.alloc ctx (Mem_kind.Ub 0) dt 512 in
  let v = ub Dtype.F16 and tmp_v = ub Dtype.F16 and zero = ub Dtype.F16 in
  let f = ub Dtype.I8 and tmp_f = ub Dtype.I8 in
  let data = values ~seed:3 n and flags = seg_flags ~seed:4 ~avg_len:10 n in
  Array.iteri (fun i x -> Local_tensor.set v i x) data;
  Array.iteri (fun i x -> Local_tensor.set f i x) flags;
  Vec.dup ctx ~dst:zero ~scalar:0.0 ~len:512 ();
  Scan.Kernel_util.segmented_hillis_steele_tile ctx ~vec:0 ~v ~f ~tmp_v ~tmp_f
    ~zero ~len:n;
  let expect = segmented_oracle data flags in
  for i = 0 to n - 1 do
    if Local_tensor.get v i <> expect.(i) then
      Alcotest.failf "segmented network mismatch at %d" i
  done;
  (* Scanned flags: boundary seen up to i. *)
  let seen = ref false in
  for i = 0 to n - 1 do
    if flags.(i) <> 0.0 then seen := true;
    let got = Local_tensor.get f i <> 0.0 in
    if got <> !seen then Alcotest.failf "flag or-scan mismatch at %d" i
  done

let () =
  Alcotest.run "segmented"
    [
      ( "segmented_scan",
        [
          Alcotest.test_case "shapes" `Quick test_basic_shapes;
          Alcotest.test_case "single segment = plain scan" `Quick
            test_single_segment_equals_scan;
          Alcotest.test_case "all boundaries = identity" `Quick
            test_all_boundaries_is_identity;
          Alcotest.test_case "tile edges" `Quick test_boundary_at_tile_edges;
          Alcotest.test_case "implicit first segment" `Quick
            test_implicit_first_segment;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "networks",
        [
          Alcotest.test_case "hillis-steele add/max" `Quick
            test_hillis_steele_add_max;
          Alcotest.test_case "segmented network" `Quick
            test_segmented_network_tile;
        ] );
    ]
