(* Integration tests of the batched scan schedules. *)

open Ascend

let check_bool = Alcotest.(check bool)

let input ~batch ~len =
  Array.init (batch * len) (fun i -> if (i + (i / len)) mod 37 = 0 then 1.0 else 0.0)

let check_batched ~name ~batch ~len runner =
  let data = input ~batch ~len in
  let dev = Device.create () in
  let x = Device.of_array dev Dtype.F16 ~name:"xb" data in
  let y, stats = runner dev ~batch ~len x in
  let expect =
    Scan.Reference.batched_inclusive ~round:Fp16.round ~batch ~len data
  in
  for i = 0 to (batch * len) - 1 do
    if Global_tensor.get y i <> expect.(i) then
      Alcotest.failf "%s batch=%d len=%d idx=%d: %g <> %g" name batch len i
        (Global_tensor.get y i) expect.(i)
  done;
  stats

let shapes =
  [ (1, 100); (1, 20000); (2, 8192); (3, 5000); (7, 1000); (20, 512);
    (21, 512); (40, 300); (41, 300); (64, 100) ]

let cases name runner =
  List.map
    (fun (batch, len) ->
      Alcotest.test_case
        (Printf.sprintf "%s %dx%d" name batch len)
        `Quick
        (fun () -> ignore (check_batched ~name ~batch ~len runner)))
    shapes

let small_s name runner =
  List.map
    (fun s ->
      Alcotest.test_case (Printf.sprintf "%s s=%d" name s) `Quick (fun () ->
          ignore (check_batched ~name ~batch:5 ~len:3000 (runner ~s))))
    [ 16; 32; 64 ]

let test_rows_independent () =
  (* A huge value in row 0 must not leak into row 1. *)
  let batch = 2 and len = 300 in
  let data = Array.make (batch * len) 0.0 in
  data.(0) <- 1000.0;
  data.(len) <- 1.0;
  let dev = Device.create () in
  let x = Device.of_array dev Dtype.F16 ~name:"xb" data in
  let y, _ = Scan.Batched_scan.run_u dev ~batch ~len x in
  check_bool "row 0 end" true (Global_tensor.get y (len - 1) = 1000.0);
  check_bool "row 1 unaffected" true
    (Global_tensor.get y ((2 * len) - 1) = 1.0)

let test_validation () =
  let dev = Device.create () in
  let x = Device.of_array dev Dtype.F16 ~name:"x" [| 1.0; 2.0 |] in
  check_bool "shape mismatch" true
    (try
       ignore (Scan.Batched_scan.run_u dev ~batch:3 ~len:3 x);
       false
     with Invalid_argument _ -> true);
  check_bool "bad batch" true
    (try
       ignore (Scan.Batched_scan.run_ul1 dev ~batch:0 ~len:2 x);
       false
     with Invalid_argument _ -> true)

let test_schedules_agree () =
  let batch = 9 and len = 2500 in
  let data = input ~batch ~len in
  let dev = Device.create () in
  let x = Device.of_array dev Dtype.F16 ~name:"xb" data in
  let yu, _ = Scan.Batched_scan.run_u dev ~batch ~len x in
  let yl, _ = Scan.Batched_scan.run_ul1 dev ~batch ~len x in
  for i = 0 to (batch * len) - 1 do
    if Global_tensor.get yu i <> Global_tensor.get yl i then
      Alcotest.failf "schedules disagree at %d" i
  done

let () =
  Alcotest.run "batched"
    [
      ( "run_u",
        cases "u" (fun dev ~batch ~len x -> Scan.Batched_scan.run_u dev ~batch ~len x)
        @ small_s "u" (fun ~s dev ~batch ~len x ->
              Scan.Batched_scan.run_u ~s dev ~batch ~len x) );
      ( "run_ul1",
        cases "ul1" (fun dev ~batch ~len x ->
            Scan.Batched_scan.run_ul1 dev ~batch ~len x)
        @ small_s "ul1" (fun ~s dev ~batch ~len x ->
              Scan.Batched_scan.run_ul1 ~s dev ~batch ~len x) );
      ( "semantics",
        [
          Alcotest.test_case "rows independent" `Quick test_rows_independent;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "schedules agree" `Quick test_schedules_agree;
        ] );
    ]
