(* Integration tests of both top-k implementations. *)

open Ascend

let check_bool = Alcotest.(check bool)

let check_topk name values k expect =
  for i = 0 to k - 1 do
    if Global_tensor.get values i <> expect.(i) then
      Alcotest.failf "%s mismatch at %d: %g <> %g" name i
        (Global_tensor.get values i)
        expect.(i)
  done

let case ~seed ~n ~k () =
  let data = Workload.Generators.uniform_f16 ~seed ~lo:(-50.0) ~hi:50.0 n in
  let expect, _ = Scan.Reference.top_k data ~k in
  let dev = Device.create () in
  let x = Device.of_array dev Dtype.F16 ~name:"x" data in
  let ours, _ = Ops.Topk.run dev x ~k in
  check_topk "ours" ours k expect;
  let base, _ = Ops.Baseline.topk dev x ~k in
  check_topk "baseline" base k expect;
  let rsel, _ = Ops.Radix_select.run dev x ~k in
  check_topk "radix_select" rsel k expect

let test_duplicates () =
  let n = 30000 in
  let data = Array.init n (fun i -> float_of_int (i mod 8)) in
  let expect, _ = Scan.Reference.top_k data ~k:100 in
  let dev = Device.create () in
  let x = Device.of_array dev Dtype.F16 ~name:"x" data in
  let ours, _ = Ops.Topk.run dev x ~k:100 in
  check_topk "dups" ours 100 expect;
  (* Radix select exercises its tie path on this input. *)
  let rsel, _ = Ops.Radix_select.run dev x ~k:100 in
  check_topk "rsel dups" rsel 100 expect

let test_radix_select_negatives_and_ties () =
  let data = [| -1.0; -2.0; -0.5; -1.0; -0.25; -8.0; -0.25 |] in
  let expect, _ = Scan.Reference.top_k data ~k:4 in
  let dev = Device.create () in
  let x = Device.of_array dev Dtype.F16 ~name:"x" data in
  let rsel, _ = Ops.Radix_select.run dev x ~k:4 in
  check_topk "negatives" rsel 4 expect

let test_radix_select_scales_in_k () =
  (* The extension's point: unlike the quickselect, per-k cost is flat
     (the bit loop does not depend on k). *)
  let n = 1 lsl 17 in
  let data = Workload.Generators.uniform_f16 ~seed:13 n in
  let dev = Device.create () in
  let x = Device.of_array dev Dtype.F16 ~name:"x" data in
  let _, st_small = Ops.Radix_select.run dev x ~k:16 in
  let _, st_large = Ops.Radix_select.run dev x ~k:4096 in
  check_bool "k-insensitive" true
    (st_large.Stats.seconds < 2.0 *. st_small.Stats.seconds)

let test_k_equals_n_small () =
  let n = 500 in
  let data = Workload.Generators.uniform_f16 ~seed:4 n in
  let expect, _ = Scan.Reference.top_k data ~k:n in
  let dev = Device.create () in
  let x = Device.of_array dev Dtype.F16 ~name:"x" data in
  let ours, _ = Ops.Topk.run dev x ~k:n in
  check_topk "k=n" ours n expect

let test_negative_result_shape () =
  (* The paper's honest negative result: the split-based top-k does not
     beat the streaming baseline for small k. *)
  let n = 1 lsl 18 in
  let data = Workload.Generators.uniform_f16 ~seed:5 n in
  let dev = Device.create () in
  let x = Device.of_array dev Dtype.F16 ~name:"x" data in
  let _, st_ours = Ops.Topk.run dev x ~k:256 in
  let _, st_base = Ops.Baseline.topk dev x ~k:256 in
  check_bool "baseline wins for small k" true
    (st_base.Stats.seconds < st_ours.Stats.seconds)

let test_validation () =
  let dev = Device.create () in
  let x = Device.of_array dev Dtype.F16 ~name:"x" [| 1.0; 2.0 |] in
  let raises f = try f (); false with Invalid_argument _ -> true in
  check_bool "k too big" true (raises (fun () -> ignore (Ops.Topk.run dev x ~k:3)));
  check_bool "k zero" true (raises (fun () -> ignore (Ops.Topk.run dev x ~k:0)));
  check_bool "baseline k cap" true
    (raises (fun () -> ignore (Ops.Baseline.topk dev x ~k:5000)));
  let dco = Device.create ~mode:Device.Cost_only () in
  let xc = Device.alloc dco Dtype.F16 10 ~name:"xc" in
  check_bool "cost-only rejected" true
    (raises (fun () -> ignore (Ops.Topk.run dco xc ~k:2)))

let () =
  Alcotest.run "topk"
    [
      ( "topk",
        [
          Alcotest.test_case "small" `Quick (case ~seed:1 ~n:2000 ~k:10);
          Alcotest.test_case "medium" `Quick (case ~seed:2 ~n:50000 ~k:100);
          Alcotest.test_case "k=1" `Quick (case ~seed:3 ~n:20000 ~k:1);
          Alcotest.test_case "k=1024" `Quick (case ~seed:6 ~n:60000 ~k:1024);
          Alcotest.test_case "duplicates" `Quick test_duplicates;
          Alcotest.test_case "radix select negatives/ties" `Quick
            test_radix_select_negatives_and_ties;
          Alcotest.test_case "radix select k-scaling" `Quick
            test_radix_select_scales_in_k;
          Alcotest.test_case "k=n small" `Quick test_k_equals_n_small;
          Alcotest.test_case "negative result" `Slow
            test_negative_result_shape;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
    ]
