(* Unit tests of block timing semantics, local allocation, and the
   launch-level scheduling / bandwidth model. *)

open Ascend

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_floatish msg a b = Alcotest.(check (float 1e-9)) msg a b

let device () = Device.create ()

let test_serial_charges_sum () =
  let dev = device () in
  let ctx = Block.make ~device:dev ~idx:0 ~num_blocks:1 in
  Block.charge ctx Engine.Cube 100.0;
  Block.charge ctx (Engine.Vec 0) 50.0;
  check_floatish "serial = sum" 150.0 (Block.elapsed_cycles ctx)

let test_pipelined_formula () =
  let dev = device () in
  let ctx = Block.make ~device:dev ~idx:0 ~num_blocks:1 in
  Block.pipelined ctx ~iters:10 (fun () ->
      Block.charge ctx Engine.Cube 1000.0;
      Block.charge ctx (Engine.Vec 0) 400.0;
      Block.charge ctx (Engine.Vec_mte_in 0) 100.0);
  (* max 1000 + (1500 - 1000) / 10 = 1050 *)
  check_floatish "pipelined" 1050.0 (Block.elapsed_cycles ctx)

let test_pipelined_iters_one_is_serial () =
  let dev = device () in
  let ctx = Block.make ~device:dev ~idx:0 ~num_blocks:1 in
  Block.pipelined ctx ~iters:1 (fun () ->
      Block.charge ctx Engine.Cube 10.0;
      Block.charge ctx (Engine.Vec 0) 20.0);
  check_floatish "iters=1 = serial" 30.0 (Block.elapsed_cycles ctx)

let test_pipelined_no_nesting () =
  let dev = device () in
  let ctx = Block.make ~device:dev ~idx:0 ~num_blocks:1 in
  Alcotest.check_raises "nesting"
    (Invalid_argument "Block.pipelined: sections do not nest") (fun () ->
      Block.pipelined ctx ~iters:2 (fun () ->
          Block.pipelined ctx ~iters:2 (fun () -> ())))

let test_alloc_capacity () =
  let dev = device () in
  let ctx = Block.make ~device:dev ~idx:0 ~num_blocks:1 in
  (* L0A holds 64 KiB = 32768 f16 elements. *)
  let _ = Block.alloc ctx Mem_kind.L0a Dtype.F16 16384 in
  let _ = Block.alloc ctx Mem_kind.L0a Dtype.F16 16384 in
  check_bool "alloc overflow raises" true
    (try
       ignore (Block.alloc ctx Mem_kind.L0a Dtype.F16 1);
       false
     with Failure _ -> true);
  Block.reset_mem ctx Mem_kind.L0a;
  let t = Block.alloc ctx Mem_kind.L0a Dtype.F16 32768 in
  check_int "post-reset full alloc" 32768 (Local_tensor.length t)

let test_gm_traffic_and_touched () =
  let dev = device () in
  let x = Device.alloc dev Dtype.F16 1000 ~name:"x" in
  let ctx = Block.make ~device:dev ~idx:0 ~num_blocks:1 in
  Block.note_gm_traffic ctx ~read:100 ~write:50;
  Block.note_touched ctx x;
  Block.note_touched ctx x;
  let r = Block.finish ctx in
  check_int "read" 100 r.Block.gm_read_bytes;
  check_int "write" 50 r.Block.gm_write_bytes;
  check_int "touched dedup" 1 (List.length r.Block.touched);
  check_int "touched bytes" 2000 (snd (List.hd r.Block.touched))

let test_launch_compute_bound () =
  let dev = device () in
  let cm = Device.cost dev in
  (* One block burning 1.8e6 cycles = 1 ms of compute, no traffic. *)
  let st =
    Launch.run dev ~blocks:1 (fun ctx -> Block.charge ctx Engine.Cube 1.8e6)
  in
  check_floatish "time = launch + compute"
    (cm.Cost_model.kernel_launch_seconds +. 1e-3)
    st.Stats.seconds;
  check_bool "not bandwidth bound" false
    (List.hd st.Stats.phases).Stats.bandwidth_bound

let test_launch_round_robin () =
  let dev = device () in
  (* 40 blocks of equal cost on 20 cores: 2 per core. *)
  let st =
    Launch.run dev ~blocks:40 (fun ctx -> Block.charge ctx Engine.Cube 1.8e6)
  in
  let cm = Device.cost dev in
  check_floatish "two rounds" (cm.Cost_model.kernel_launch_seconds +. 2e-3)
    st.Stats.seconds;
  check_int "cores used" 20 st.Stats.cores_used

let test_launch_bandwidth_cap () =
  (* Shrink L2 so a small tensor's footprint spills to HBM: 20 blocks
     each claiming 40 MB of traffic -> 800 MB at 800 GB/s = 1 ms,
     dominating negligible compute. *)
  let cost = { Cost_model.default with Cost_model.l2_capacity_bytes = 1024 } in
  let dev = Device.create ~cost () in
  let big = Device.alloc dev Dtype.F16 4096 ~name:"big" in
  let st =
    Launch.run dev ~blocks:20 (fun ctx ->
        Block.note_touched ctx big;
        Block.note_gm_traffic ctx ~read:(40 * 1000 * 1000) ~write:0;
        Block.charge ctx Engine.Cube 100.0)
  in
  let expected = cost.Cost_model.kernel_launch_seconds +. 1e-3 in
  check_floatish "bandwidth bound time" expected st.Stats.seconds;
  check_bool "flagged bandwidth bound" true
    (List.hd st.Stats.phases).Stats.bandwidth_bound

let test_launch_l2_bandwidth () =
  let dev = device () in
  let cm = Device.cost dev in
  (* Small footprint: the same traffic runs at the L2 rate. *)
  let small = Device.alloc dev Dtype.F16 1024 ~name:"small" in
  let st =
    Launch.run dev ~blocks:1 (fun ctx ->
        Block.note_touched ctx small;
        Block.note_gm_traffic ctx ~read:(4 * 1000 * 1000) ~write:0)
  in
  let expected =
    cm.Cost_model.kernel_launch_seconds
    +. (4e6 /. cm.Cost_model.l2_bandwidth)
  in
  check_floatish "l2 rate" expected st.Stats.seconds

let test_phases_add_sync () =
  let dev = device () in
  let cm = Device.cost dev in
  let nop _ = () in
  let st1 = Launch.run_phases dev ~blocks:1 [ nop ] in
  let st3 = Launch.run_phases dev ~blocks:1 [ nop; nop; nop ] in
  check_floatish "two syncs"
    (2.0 *. cm.Cost_model.sync_all_seconds)
    (st3.Stats.seconds -. st1.Stats.seconds)

let test_launch_validation () =
  let dev = device () in
  Alcotest.check_raises "no phases"
    (Invalid_argument "Launch.run_phases: no phases") (fun () ->
      ignore (Launch.run_phases dev ~blocks:1 []));
  Alcotest.check_raises "blocks < 1"
    (Invalid_argument "Launch.run_phases: blocks must be >= 1") (fun () ->
      ignore (Launch.run dev ~blocks:0 (fun _ -> ())))

let test_stats_combine () =
  let dev = device () in
  let mk () = Launch.run dev ~blocks:2 (fun ctx ->
      Block.charge ctx Engine.Cube 1000.0;
      Block.note_gm_traffic ctx ~read:10 ~write:20)
  in
  let a = mk () and b = mk () in
  let c = Stats.combine ~name:"both" [ a; b ] in
  check_floatish "seconds add" (a.Stats.seconds +. b.Stats.seconds)
    c.Stats.seconds;
  check_int "reads add" 40 c.Stats.gm_read_bytes;
  check_int "writes add" 80 c.Stats.gm_write_bytes;
  check_int "phases concat" 2 (List.length c.Stats.phases);
  let busy name st =
    match List.assoc_opt name st.Stats.engine_busy with
    | Some v -> v
    | None -> Alcotest.failf "engine %s missing" name
  in
  check_floatish "busy adds" (busy "cube" a +. busy "cube" b) (busy "cube" c)

let test_device_modes () =
  let dev = Device.create ~mode:Device.Cost_only () in
  check_bool "not functional" false (Device.functional dev);
  let t = Device.alloc dev Dtype.F16 100 ~name:"t" in
  check_bool "unbacked" false (Global_tensor.is_backed t);
  check_bool "buffer raises" true
    (try
       ignore (Global_tensor.buffer t);
       false
     with Invalid_argument _ -> true);
  let devf = device () in
  let tf = Device.of_array devf Dtype.F16 ~name:"tf" [| 1.0; 2.0 |] in
  check_floatish "of_array" 2.0 (Global_tensor.get tf 1);
  check_int "allocated bytes" (100 * 2 + 0) (Device.allocated_bytes dev)

let () =
  Alcotest.run "block_launch"
    [
      ( "block",
        [
          Alcotest.test_case "serial sum" `Quick test_serial_charges_sum;
          Alcotest.test_case "pipelined formula" `Quick test_pipelined_formula;
          Alcotest.test_case "iters=1 serial" `Quick
            test_pipelined_iters_one_is_serial;
          Alcotest.test_case "no nesting" `Quick test_pipelined_no_nesting;
          Alcotest.test_case "alloc capacity" `Quick test_alloc_capacity;
          Alcotest.test_case "traffic/touched" `Quick
            test_gm_traffic_and_touched;
        ] );
      ( "launch",
        [
          Alcotest.test_case "compute bound" `Quick test_launch_compute_bound;
          Alcotest.test_case "round robin" `Quick test_launch_round_robin;
          Alcotest.test_case "bandwidth cap" `Quick test_launch_bandwidth_cap;
          Alcotest.test_case "l2 bandwidth" `Quick test_launch_l2_bandwidth;
          Alcotest.test_case "phase syncs" `Quick test_phases_add_sync;
          Alcotest.test_case "validation" `Quick test_launch_validation;
          Alcotest.test_case "stats combine" `Quick test_stats_combine;
          Alcotest.test_case "device modes" `Quick test_device_modes;
        ] );
    ]
