(* Unit tests of the vector (AIV) engine operations. *)

open Ascend

let check_float = Alcotest.(check (float 0.0))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ctx () =
  let dev = Device.create () in
  Block.make ~device:dev ~idx:0 ~num_blocks:1

let ub ?(dt = Dtype.F16) ?(n = 16) c = Block.alloc c (Mem_kind.Ub 0) dt n

let load t a = Array.iteri (fun i v -> Local_tensor.set t i v) a
let dump t n = Array.init n (Local_tensor.get t)

let test_binops () =
  let c = ctx () in
  let a = ub c and b = ub c and d = ub c in
  load a [| 1.0; 2.0; 3.0; 4.0 |];
  load b [| 4.0; 3.0; 2.0; 1.0 |];
  Vec.binop c Vec.Add ~src0:a ~src1:b ~dst:d ~len:4 ();
  Alcotest.(check (array (float 0.0))) "add" [| 5.0; 5.0; 5.0; 5.0 |] (dump d 4);
  Vec.binop c Vec.Sub ~src0:a ~src1:b ~dst:d ~len:4 ();
  check_float "sub" (-3.0) (Local_tensor.get d 0);
  Vec.binop c Vec.Mul ~src0:a ~src1:b ~dst:d ~len:4 ();
  check_float "mul" 6.0 (Local_tensor.get d 1);
  Vec.binop c Vec.Max ~src0:a ~src1:b ~dst:d ~len:4 ();
  check_float "max" 4.0 (Local_tensor.get d 0);
  Vec.binop c Vec.Min ~src0:a ~src1:b ~dst:d ~len:4 ();
  check_float "min" 1.0 (Local_tensor.get d 0)

let test_binop_rounds_to_dtype () =
  let c = ctx () in
  let a = ub c and b = ub c and d = ub c in
  load a [| 2048.0 |];
  load b [| 1.0 |];
  Vec.add c ~src0:a ~src1:b ~dst:d ~len:1 ();
  check_float "fp16 rounding applied" 2048.0 (Local_tensor.get d 0)

let test_scalar_ops () =
  let c = ctx () in
  let a = ub c and d = ub c in
  load a [| 1.0; -2.0; 3.0 |];
  Vec.adds c ~src:a ~dst:d ~scalar:10.0 ~len:3 ();
  check_float "adds" 8.0 (Local_tensor.get d 1);
  Vec.muls c ~src:a ~dst:d ~scalar:2.0 ~len:3 ();
  check_float "muls" (-4.0) (Local_tensor.get d 1);
  Vec.maxs c ~src:a ~dst:d ~scalar:0.0 ~len:3 ();
  check_float "maxs (relu)" 0.0 (Local_tensor.get d 1);
  Vec.mins c ~src:a ~dst:d ~scalar:0.0 ~len:3 ();
  check_float "mins" 0.0 (Local_tensor.get d 2);
  Vec.exp c ~src:a ~dst:d ~len:1 ();
  check_float "exp" (Fp16.round (Stdlib.exp 1.0)) (Local_tensor.get d 0)

let test_offsets () =
  let c = ctx () in
  let a = ub c and d = ub c in
  load a [| 1.0; 2.0; 3.0; 4.0 |];
  Vec.adds c ~src:a ~src_off:2 ~dst:d ~dst_off:1 ~scalar:1.0 ~len:2 ();
  check_float "offset result" 4.0 (Local_tensor.get d 1);
  check_float "offset result2" 5.0 (Local_tensor.get d 2);
  check_float "untouched" 0.0 (Local_tensor.get d 0)

let test_compare_select () =
  let c = ctx () in
  let a = ub c and b = ub c in
  let m = ub ~dt:Dtype.I8 c in
  let d = ub c in
  load a [| 1.0; 5.0; 3.0 |];
  load b [| 2.0; 2.0; 3.0 |];
  Vec.compare_scalar c Vec.Ge ~src:a ~dst:m ~scalar:3.0 ~len:3 ();
  Alcotest.(check (array (float 0.0))) "cmp scalar" [| 0.0; 1.0; 1.0 |] (dump m 3);
  Vec.compare c Vec.Gt ~src0:a ~src1:b ~dst:m ~len:3 ();
  Alcotest.(check (array (float 0.0))) "cmp tensors" [| 0.0; 1.0; 0.0 |] (dump m 3);
  Vec.select c ~mask:m ~src0:a ~src1:b ~dst:d ~len:3 ();
  Alcotest.(check (array (float 0.0))) "select" [| 2.0; 5.0; 3.0 |] (dump d 3)

let test_bitwise () =
  let c = ctx () in
  let a = ub ~dt:Dtype.U16 c and d = ub ~dt:Dtype.U16 c in
  load a [| 12.0 |];
  Vec.shift_right c ~src:a ~dst:d ~bits:2 ~len:1 ();
  check_float "shr" 3.0 (Local_tensor.get d 0);
  Vec.shift_left c ~src:a ~dst:d ~bits:2 ~len:1 ();
  check_float "shl" 48.0 (Local_tensor.get d 0);
  Vec.bit_ands c ~src:a ~dst:d ~mask:0b0100 ~len:1 ();
  check_float "and" 4.0 (Local_tensor.get d 0);
  Vec.bit_ors c ~src:a ~dst:d ~mask:0b0011 ~len:1 ();
  check_float "or" 15.0 (Local_tensor.get d 0);
  Vec.bit_xors c ~src:a ~dst:d ~mask:0xFFFF ~len:1 ();
  check_float "xor" (float_of_int (0xFFFF lxor 12)) (Local_tensor.get d 0);
  Vec.bit_not c ~src:a ~dst:d ~len:1 ();
  check_float "not" (float_of_int (0xFFFF lxor 12)) (Local_tensor.get d 0);
  let b = ub ~dt:Dtype.U16 c in
  load b [| 10.0 |];
  Vec.bit_op c Vec.Xor ~src0:a ~src1:b ~dst:d ~len:1 ();
  check_float "xor tensors" 6.0 (Local_tensor.get d 0);
  Vec.bit_op c Vec.And ~src0:a ~src1:b ~dst:d ~len:1 ();
  check_float "and tensors" 8.0 (Local_tensor.get d 0);
  Vec.bit_op c Vec.Or ~src0:a ~src1:b ~dst:d ~len:1 ();
  check_float "or tensors" 14.0 (Local_tensor.get d 0)

let test_bitwise_requires_integer () =
  let c = ctx () in
  let a = ub c and d = ub c in
  check_bool "float bitop raises" true
    (try
       Vec.bit_ands c ~src:a ~dst:d ~mask:1 ~len:1 ();
       false
     with Invalid_argument _ -> true)

let test_signed_unsigned_field () =
  (* I8 -1 has unsigned field 0xFF. *)
  let c = ctx () in
  let a = ub ~dt:Dtype.I8 c and d = ub ~dt:Dtype.I8 c in
  load a [| -1.0 |];
  Vec.shift_right c ~src:a ~dst:d ~bits:4 ~len:1 ();
  check_float "i8 -1 >> 4" 15.0 (Local_tensor.get d 0)

let test_cast_dup_copy_arange () =
  let c = ctx () in
  let a = ub ~dt:Dtype.U16 c in
  let d = ub ~dt:Dtype.I8 c in
  load a [| 0.0; 1.0; 200.0 |];
  Vec.cast c ~src:a ~dst:d ~len:3 ();
  check_float "cast wraps" (-56.0) (Local_tensor.get d 2);
  let f = ub c in
  Vec.dup c ~dst:f ~scalar:7.0 ~len:5 ();
  check_float "dup" 7.0 (Local_tensor.get f 4);
  let g = ub c in
  Vec.copy c ~src:f ~dst:g ~len:5 ();
  check_float "copy" 7.0 (Local_tensor.get g 4);
  let h = ub ~dt:Dtype.I32 c in
  Vec.arange c ~dst:h ~start:10.0 ~len:5 ();
  check_float "arange" 14.0 (Local_tensor.get h 4)

let test_reductions () =
  let c = ctx () in
  let a = ub ~n:100 c in
  load a (Array.init 100 (fun i -> float_of_int (i + 1)));
  check_float "reduce_sum" 5050.0 (Vec.reduce_sum c ~src:a ~len:100 ());
  check_float "reduce_sum range" 5.0
    (Vec.reduce_sum c ~src:a ~src_off:1 ~len:2 ());
  check_float "reduce_max" 100.0 (Vec.reduce_max c ~src:a ~len:100 ())

let test_cumsum () =
  let c = ctx () in
  let a = ub ~n:64 c and d = ub ~n:64 c in
  load a (Array.make 64 1.0);
  Vec.cumsum c ~src:a ~dst:d ~rows:8 ~cols:8 ();
  check_float "linear cumsum across rows" 64.0 (Local_tensor.get d 63);
  check_float "first" 1.0 (Local_tensor.get d 0);
  check_float "row boundary" 9.0 (Local_tensor.get d 8)

let test_gather_mask () =
  let c = ctx () in
  let a = ub c and m = ub ~dt:Dtype.I8 c and d = ub c in
  load a [| 10.0; 20.0; 30.0; 40.0 |];
  load m [| 1.0; 0.0; 1.0; 1.0 |];
  let n = Vec.gather_mask c ~src:a ~mask:m ~dst:d ~len:4 () in
  check_int "count" 3 n;
  Alcotest.(check (array (float 0.0))) "gathered" [| 10.0; 30.0; 40.0 |] (dump d 3)

let test_sort_region () =
  let c = ctx () in
  let a = ub ~n:64 c and d = ub ~n:64 c in
  load a (Array.init 64 (fun i -> float_of_int ((i * 37) mod 64)));
  Vec.sort_region c ~src:a ~dst:d ~len:64 ();
  let out = dump d 64 in
  Array.iteri (fun i v -> check_float "sorted asc" (float_of_int i) v) out;
  Vec.sort_region c ~descending:true ~src:a ~dst:d ~len:64 ();
  check_float "desc first" 63.0 (Local_tensor.get d 0)

let test_get_set () =
  let c = ctx () in
  let a = ub c in
  Vec.set c a 2 5.0;
  check_float "set/get" 5.0 (Vec.get c a 2)

let test_ub_only () =
  let c = ctx () in
  let l1 = Block.alloc c Mem_kind.L1 Dtype.F16 16 in
  let d = ub c in
  check_bool "vec op on L1 raises" true
    (try
       Vec.adds c ~src:l1 ~dst:d ~scalar:1.0 ~len:4 ();
       false
     with Invalid_argument _ -> true)

let test_structure_invalidated_by_write () =
  let c = ctx () in
  let a = ub c in
  Scan.Const_mat.fill a ~s:4 Scan.Const_mat.Ones;
  check_bool "tagged" true (Local_tensor.structure a = Local_tensor.All_ones);
  Vec.adds c ~src:a ~dst:a ~scalar:1.0 ~len:4 ();
  check_bool "write clears tag" true
    (Local_tensor.structure a = Local_tensor.General)

let test_cost_charged_to_engine () =
  let c = ctx () in
  let a = ub c and d = ub c in
  Vec.adds c ~vec:1 ~src:a ~dst:d ~scalar:1.0 ~len:4 ();
  let r = Block.finish c in
  let busy e = r.Block.busy.(Engine.index ~vec_per_core:2 e) in
  check_bool "vec1 charged" true (busy (Engine.Vec 1) > 0.0);
  check_bool "vec0 idle" true (busy (Engine.Vec 0) = 0.0)

let () =
  Alcotest.run "vec"
    [
      ( "ops",
        [
          Alcotest.test_case "binops" `Quick test_binops;
          Alcotest.test_case "dtype rounding" `Quick
            test_binop_rounds_to_dtype;
          Alcotest.test_case "scalar ops" `Quick test_scalar_ops;
          Alcotest.test_case "offsets" `Quick test_offsets;
          Alcotest.test_case "compare/select" `Quick test_compare_select;
          Alcotest.test_case "bitwise" `Quick test_bitwise;
          Alcotest.test_case "bitwise requires int" `Quick
            test_bitwise_requires_integer;
          Alcotest.test_case "unsigned field of signed" `Quick
            test_signed_unsigned_field;
          Alcotest.test_case "cast/dup/copy/arange" `Quick
            test_cast_dup_copy_arange;
          Alcotest.test_case "reductions" `Quick test_reductions;
          Alcotest.test_case "cumsum" `Quick test_cumsum;
          Alcotest.test_case "gather_mask" `Quick test_gather_mask;
          Alcotest.test_case "sort_region" `Quick test_sort_region;
          Alcotest.test_case "get/set" `Quick test_get_set;
          Alcotest.test_case "ub only" `Quick test_ub_only;
          Alcotest.test_case "structure invalidation" `Quick
            test_structure_invalidated_by_write;
          Alcotest.test_case "engine attribution" `Quick
            test_cost_charged_to_engine;
        ] );
    ]
