(* Unit tests of the memory transfer engine (DataCopy). *)

open Ascend

let check_float = Alcotest.(check (float 0.0))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let setup () =
  let dev = Device.create () in
  let ctx = Block.make ~device:dev ~idx:0 ~num_blocks:1 in
  (dev, ctx)

let test_copy_in_out_roundtrip () =
  let dev, ctx = setup () in
  let x = Device.of_array dev Dtype.F16 ~name:"x" [| 1.0; 2.0; 3.0; 4.0 |] in
  let y = Device.alloc dev Dtype.F16 4 ~name:"y" in
  let ub = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 4 in
  Mte.copy_in ctx ~engine:(Engine.Vec_mte_in 0) ~src:x ~dst:ub ~len:4 ();
  check_float "in" 3.0 (Local_tensor.get ub 2);
  Mte.copy_out ctx ~engine:(Engine.Vec_mte_out 0) ~src:ub ~dst:y ~len:4 ();
  check_float "out" 4.0 (Global_tensor.get y 3);
  let r = Block.finish ctx in
  check_int "read bytes" 8 r.Block.gm_read_bytes;
  check_int "write bytes" 8 r.Block.gm_write_bytes;
  check_int "touched two tensors" 2 (List.length r.Block.touched)

let test_copy_offsets () =
  let dev, ctx = setup () in
  let x = Device.of_array dev Dtype.F16 ~name:"x" [| 0.0; 1.0; 2.0; 3.0; 4.0 |] in
  let ub = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 8 in
  Mte.copy_in ctx ~engine:(Engine.Vec_mte_in 0) ~src:x ~src_off:2 ~dst:ub
    ~dst_off:1 ~len:3 ();
  check_float "offset copy" 2.0 (Local_tensor.get ub 1);
  check_float "offset copy end" 4.0 (Local_tensor.get ub 3);
  check_float "untouched" 0.0 (Local_tensor.get ub 0)

let test_copy_cast_out () =
  (* L0C (f32) -> GM (f16) quantizing output path. *)
  let dev, ctx = setup () in
  let y = Device.alloc dev Dtype.F16 2 ~name:"y" in
  let l0c = Block.alloc ctx Mem_kind.L0c Dtype.F32 2 in
  Local_tensor.set l0c 0 2049.0;
  Local_tensor.set l0c 1 1.5;
  Mte.copy_out ctx ~engine:Engine.Cube_mte_out ~src:l0c ~dst:y ~len:2 ();
  check_float "quantized" 2048.0 (Global_tensor.get y 0);
  check_float "exact" 1.5 (Global_tensor.get y 1);
  (* Traffic is counted on the GM side: 2 x 2 bytes. *)
  check_int "gm-side bytes" 4 (Block.finish ctx).Block.gm_write_bytes

let test_copy_strided () =
  let dev, ctx = setup () in
  (* Gather rows of a 3x4 matrix into a 3x2 tile (burst 2, strides 4/2). *)
  let x =
    Device.of_array dev Dtype.F16 ~name:"x"
      (Array.init 12 float_of_int)
  in
  let ub = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 6 in
  Mte.copy_in_strided ctx ~engine:(Engine.Vec_mte_in 0) ~src:x ~src_off:0
    ~src_stride:4 ~dst:ub ~dst_off:0 ~dst_stride:2 ~burst:2 ~count:3;
  check_float "row0" 0.0 (Local_tensor.get ub 0);
  check_float "row1" 4.0 (Local_tensor.get ub 2);
  check_float "row2" 9.0 (Local_tensor.get ub 5);
  let y = Device.alloc dev Dtype.F16 12 ~name:"y" in
  Mte.copy_out_strided ctx ~engine:(Engine.Vec_mte_out 0) ~src:ub ~src_off:0
    ~src_stride:2 ~dst:y ~dst_off:0 ~dst_stride:4 ~burst:2 ~count:3;
  check_float "scatter" 9.0 (Global_tensor.get y 9)

let test_copy_local_structure () =
  let dev, ctx = setup () in
  ignore dev;
  let l1 = Block.alloc ctx Mem_kind.L1 Dtype.F16 16 in
  Scan.Const_mat.fill l1 ~s:4 Scan.Const_mat.Upper;
  let l0b = Block.alloc ctx Mem_kind.L0b Dtype.F16 16 in
  Mte.copy_local ctx ~engine:Engine.Cube ~src:l1 ~dst:l0b ~len:16 ();
  check_bool "structure preserved on whole copy" true
    (Local_tensor.structure l0b = Local_tensor.Upper_ones);
  check_float "content" 1.0 (Local_tensor.get l0b 3);
  (* Partial copies drop the tag. *)
  let l0b2 = Block.alloc ctx Mem_kind.L0b Dtype.F16 16 in
  Mte.copy_local ctx ~engine:Engine.Cube ~src:l1 ~dst:l0b2 ~len:8 ();
  check_bool "partial copy drops tag" true
    (Local_tensor.structure l0b2 = Local_tensor.General)

let test_bounds_checks () =
  let dev, ctx = setup () in
  let x = Device.alloc dev Dtype.F16 4 ~name:"x" in
  let ub = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 4 in
  check_bool "copy_in overrun raises" true
    (try
       Mte.copy_in ctx ~engine:(Engine.Vec_mte_in 0) ~src:x ~src_off:2 ~dst:ub
         ~len:3 ();
       false
     with Invalid_argument _ -> true);
  check_bool "copy_out overrun raises" true
    (try
       Mte.copy_out ctx ~engine:(Engine.Vec_mte_out 0) ~src:ub ~dst:x
         ~dst_off:3 ~len:2 ();
       false
     with Invalid_argument _ -> true)

let test_costs_scale_with_bytes () =
  let dev, ctx = setup () in
  let cm = Device.cost dev in
  let x = Device.alloc dev Dtype.F16 20000 ~name:"x" in
  let ub = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 20000 in
  let t0 = Block.elapsed_cycles ctx in
  Mte.copy_in ctx ~engine:(Engine.Vec_mte_in 0) ~src:x ~dst:ub ~len:10000 ();
  let c1 = Block.elapsed_cycles ctx -. t0 in
  Mte.copy_in ctx ~engine:(Engine.Vec_mte_in 0) ~src:x ~dst:ub ~len:20000 ();
  let c2 = Block.elapsed_cycles ctx -. t0 -. c1 in
  check_bool "larger copy costs more" true (c2 > c1);
  check_bool "cost near linear" true
    (Float.abs (c2 -. (2.0 *. c1) +. Cost_model.mte_copy_cycles cm ~bytes:0)
     < 2.0)

let test_cost_only_skips_data () =
  let dev = Device.create ~mode:Device.Cost_only () in
  let ctx = Block.make ~device:dev ~idx:0 ~num_blocks:1 in
  let x = Device.alloc dev Dtype.F16 100 ~name:"x" in
  let ub = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 100 in
  (* Must not raise despite the unbacked global tensor. *)
  Mte.copy_in ctx ~engine:(Engine.Vec_mte_in 0) ~src:x ~dst:ub ~len:100 ();
  Mte.copy_out ctx ~engine:(Engine.Vec_mte_out 0) ~src:ub ~dst:x ~len:100 ();
  let r = Block.finish ctx in
  check_int "traffic still counted" 400
    (r.Block.gm_read_bytes + r.Block.gm_write_bytes)

let () =
  Alcotest.run "mte"
    [
      ( "datacopy",
        [
          Alcotest.test_case "roundtrip" `Quick test_copy_in_out_roundtrip;
          Alcotest.test_case "offsets" `Quick test_copy_offsets;
          Alcotest.test_case "cast on out" `Quick test_copy_cast_out;
          Alcotest.test_case "strided" `Quick test_copy_strided;
          Alcotest.test_case "local structure" `Quick
            test_copy_local_structure;
          Alcotest.test_case "bounds" `Quick test_bounds_checks;
          Alcotest.test_case "cost scaling" `Quick test_costs_scale_with_bytes;
          Alcotest.test_case "cost-only mode" `Quick test_cost_only_skips_data;
        ] );
    ]
