(* Unit tests of the engine enumeration and local memory descriptions. *)

open Ascend

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_engine_count () =
  check_int "2 vec cores" 10 (Engine.count ~vec_per_core:2);
  check_int "1 vec core" 7 (Engine.count ~vec_per_core:1);
  check_int "all list length" 10
    (List.length (Engine.all ~vec_per_core:2))

let test_engine_index_dense_unique () =
  let vec_per_core = 2 in
  let engines = Engine.all ~vec_per_core in
  let idxs = List.map (Engine.index ~vec_per_core) engines in
  let sorted = List.sort_uniq compare idxs in
  check_int "dense unique" (List.length engines) (List.length sorted);
  check_int "min 0" 0 (List.hd sorted);
  check_int "max count-1"
    (Engine.count ~vec_per_core - 1)
    (List.nth sorted (List.length sorted - 1))

let test_engine_vec_range () =
  Alcotest.check_raises "vec index out of range"
    (Invalid_argument "Engine: vector core 2 out of range [0,2)") (fun () ->
      ignore (Engine.index ~vec_per_core:2 (Engine.Vec 2)))

let test_engine_is_mte () =
  check_bool "cube mte" true (Engine.is_mte Engine.Cube_mte_in);
  check_bool "vec mte" true (Engine.is_mte (Engine.Vec_mte_out 1));
  check_bool "cube" false (Engine.is_mte Engine.Cube);
  check_bool "scalar" false (Engine.is_mte Engine.Scalar);
  check_bool "vec" false (Engine.is_mte (Engine.Vec 0))

let test_engine_equal () =
  check_bool "same vec" true (Engine.equal (Engine.Vec 1) (Engine.Vec 1));
  check_bool "diff vec" false (Engine.equal (Engine.Vec 0) (Engine.Vec 1));
  check_bool "diff kind" false (Engine.equal Engine.Cube Engine.Scalar)

let test_mem_capacities () =
  check_int "ub" (192 * 1024) (Mem_kind.capacity_bytes (Mem_kind.Ub 0));
  check_int "l1" (1024 * 1024) (Mem_kind.capacity_bytes Mem_kind.L1);
  check_int "l0a" (64 * 1024) (Mem_kind.capacity_bytes Mem_kind.L0a);
  check_int "l0b" (64 * 1024) (Mem_kind.capacity_bytes Mem_kind.L0b);
  check_int "l0c" (256 * 1024) (Mem_kind.capacity_bytes Mem_kind.L0c)

let test_mem_owner () =
  check_bool "ub0 -> vec0" true
    (Engine.equal (Mem_kind.owner ~vec_per_core:2 (Mem_kind.Ub 0)) (Engine.Vec 0));
  check_bool "l0a -> cube" true
    (Engine.equal (Mem_kind.owner ~vec_per_core:2 Mem_kind.L0a) Engine.Cube);
  Alcotest.check_raises "ub index range"
    (Invalid_argument "Mem_kind.owner: vector core index out of range")
    (fun () -> ignore (Mem_kind.owner ~vec_per_core:2 (Mem_kind.Ub 5)))

let test_mem_equal () =
  check_bool "ub same" true (Mem_kind.equal (Mem_kind.Ub 1) (Mem_kind.Ub 1));
  check_bool "ub diff" false (Mem_kind.equal (Mem_kind.Ub 0) (Mem_kind.Ub 1));
  check_bool "l1 vs l0a" false (Mem_kind.equal Mem_kind.L1 Mem_kind.L0a)

let () =
  Alcotest.run "engine_mem"
    [
      ( "engine",
        [
          Alcotest.test_case "count" `Quick test_engine_count;
          Alcotest.test_case "dense unique index" `Quick
            test_engine_index_dense_unique;
          Alcotest.test_case "vec range" `Quick test_engine_vec_range;
          Alcotest.test_case "is_mte" `Quick test_engine_is_mte;
          Alcotest.test_case "equal" `Quick test_engine_equal;
        ] );
      ( "memory",
        [
          Alcotest.test_case "capacities" `Quick test_mem_capacities;
          Alcotest.test_case "owner" `Quick test_mem_owner;
          Alcotest.test_case "equal" `Quick test_mem_equal;
        ] );
    ]
