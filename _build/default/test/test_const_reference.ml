(* Unit tests of the constant matrices and the host-side oracles. *)

let check_float = Alcotest.(check (float 0.0))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_const_patterns () =
  let s = 5 in
  List.iter
    (fun (which, name, f) ->
      for i = 0 to s - 1 do
        for j = 0 to s - 1 do
          check_float
            (Printf.sprintf "%s[%d,%d]" name i j)
            (f i j)
            (Scan.Const_mat.expected ~s which ~i ~j)
        done
      done)
    [
      (Scan.Const_mat.Upper, "U", fun i j -> if i <= j then 1.0 else 0.0);
      (Scan.Const_mat.Lower, "L", fun i j -> if i >= j then 1.0 else 0.0);
      (Scan.Const_mat.Strict_lower, "L-", fun i j -> if i > j then 1.0 else 0.0);
      (Scan.Const_mat.Ones, "1", fun _ _ -> 1.0);
      (Scan.Const_mat.Ident, "I", fun i j -> if i = j then 1.0 else 0.0);
    ]

let test_const_fill_and_structure () =
  let dev = Ascend.Device.create () in
  let ctx = Ascend.Block.make ~device:dev ~idx:0 ~num_blocks:1 in
  let lt =
    Scan.Const_mat.load ctx ~engine:Ascend.Engine.Cube_mte_in
      ~kind:Ascend.Mem_kind.L0b ~dtype:Ascend.Dtype.F16 ~s:4
      Scan.Const_mat.Strict_lower
  in
  check_bool "tag" true
    (Ascend.Local_tensor.structure lt = Ascend.Local_tensor.Strict_lower_ones);
  check_float "diag zero" 0.0 (Ascend.Local_tensor.get lt 5);
  check_float "below diag" 1.0 (Ascend.Local_tensor.get lt 4);
  (* The load charges an MTE copy. *)
  let r = Ascend.Block.finish ctx in
  check_bool "charged" true
    (r.Ascend.Block.busy.(Ascend.Engine.index ~vec_per_core:2
                            Ascend.Engine.Cube_mte_in)
     > 0.0)

let test_inclusive_exclusive () =
  let x = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (array (float 0.0)))
    "inclusive" [| 1.0; 3.0; 6.0; 10.0 |]
    (Scan.Reference.inclusive_scan x);
  Alcotest.(check (array (float 0.0)))
    "exclusive" [| 0.0; 1.0; 3.0; 6.0 |]
    (Scan.Reference.exclusive_scan x);
  Alcotest.(check (array (float 0.0))) "empty" [||]
    (Scan.Reference.inclusive_scan [||])

let test_scan_rounding_hook () =
  (* With fp16 rounding, 2048 + 1 stays 2048. *)
  let x = Array.make 3 0.0 in
  x.(0) <- 2048.0;
  x.(1) <- 1.0;
  x.(2) <- 1.0;
  let y = Scan.Reference.inclusive_scan ~round:Ascend.Fp16.round x in
  check_float "sticky" 2048.0 y.(2)

let test_batched_oracle () =
  let x = [| 1.0; 1.0; 1.0; 2.0; 2.0; 2.0 |] in
  Alcotest.(check (array (float 0.0)))
    "rows independent"
    [| 1.0; 2.0; 3.0; 2.0; 4.0; 6.0 |]
    (Scan.Reference.batched_inclusive ~batch:2 ~len:3 x)

let test_split_oracle () =
  let x = [| 10.0; 20.0; 30.0; 40.0 |] in
  let flags = [| 0.0; 1.0; 0.0; 1.0 |] in
  let vals, idxs = Scan.Reference.split x ~flags in
  Alcotest.(check (array (float 0.0))) "values" [| 20.0; 40.0; 10.0; 30.0 |] vals;
  Alcotest.(check (array int)) "indices" [| 1; 3; 0; 2 |] idxs

let test_compress_oracle () =
  let x = [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check (array (float 0.0)))
    "compress" [| 1.0; 3.0 |]
    (Scan.Reference.compress x ~mask:[| 1.0; 0.0; 1.0 |])

let test_sort_oracle () =
  let x = [| 3.0; 1.0; 2.0; 1.0 |] in
  let vals, idxs = Scan.Reference.stable_sort_with_indices x in
  Alcotest.(check (array (float 0.0))) "sorted" [| 1.0; 1.0; 2.0; 3.0 |] vals;
  Alcotest.(check (array int)) "stable indices" [| 1; 3; 2; 0 |] idxs;
  check_bool "is_sorted yes" true (Scan.Reference.is_sorted vals);
  check_bool "is_sorted no" false (Scan.Reference.is_sorted x)

let test_topk_oracle () =
  let x = [| 5.0; 1.0; 5.0; 3.0 |] in
  let vals, idxs = Scan.Reference.top_k x ~k:3 in
  Alcotest.(check (array (float 0.0))) "topk" [| 5.0; 5.0; 3.0 |] vals;
  Alcotest.(check (array int)) "topk idx" [| 0; 2; 3 |] idxs

let test_top_p_count () =
  let probs = [| 0.5; 0.3; 0.15; 0.05 |] in
  check_int "p=0.4 keeps 1" 1 (Scan.Reference.top_p_threshold_count probs ~p:0.4);
  check_int "p=0.5 keeps 2 (exact boundary not exceeded)" 2
    (Scan.Reference.top_p_threshold_count probs ~p:0.5);
  check_int "p=0.85 keeps 3" 3
    (Scan.Reference.top_p_threshold_count probs ~p:0.85);
  check_int "p=1 keeps all" 4 (Scan.Reference.top_p_threshold_count probs ~p:1.0)

let test_sum () = check_float "sum" 6.0 (Scan.Reference.sum [| 1.0; 2.0; 3.0 |])

let () =
  Alcotest.run "const_reference"
    [
      ( "const_mat",
        [
          Alcotest.test_case "patterns" `Quick test_const_patterns;
          Alcotest.test_case "fill/structure/cost" `Quick
            test_const_fill_and_structure;
        ] );
      ( "reference",
        [
          Alcotest.test_case "inclusive/exclusive" `Quick
            test_inclusive_exclusive;
          Alcotest.test_case "rounding hook" `Quick test_scan_rounding_hook;
          Alcotest.test_case "batched" `Quick test_batched_oracle;
          Alcotest.test_case "split" `Quick test_split_oracle;
          Alcotest.test_case "compress" `Quick test_compress_oracle;
          Alcotest.test_case "sort" `Quick test_sort_oracle;
          Alcotest.test_case "topk" `Quick test_topk_oracle;
          Alcotest.test_case "top-p count" `Quick test_top_p_count;
          Alcotest.test_case "sum" `Quick test_sum;
        ] );
    ]
