(* Unit tests of the data-type semantics (rounding, wrap-around, cast). *)

open Ascend

let check_float = Alcotest.(check (float 0.0))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let all = [ Dtype.F16; Dtype.F32; Dtype.I8; Dtype.I16; Dtype.U16; Dtype.I32 ]

let test_sizes () =
  check_int "f16" 2 (Dtype.size_bytes Dtype.F16);
  check_int "f32" 4 (Dtype.size_bytes Dtype.F32);
  check_int "i8" 1 (Dtype.size_bytes Dtype.I8);
  check_int "i16" 2 (Dtype.size_bytes Dtype.I16);
  check_int "u16" 2 (Dtype.size_bytes Dtype.U16);
  check_int "i32" 4 (Dtype.size_bytes Dtype.I32)

let test_is_integer () =
  check_bool "f16" false (Dtype.is_integer Dtype.F16);
  check_bool "f32" false (Dtype.is_integer Dtype.F32);
  List.iter
    (fun dt -> check_bool (Dtype.to_string dt) true (Dtype.is_integer dt))
    [ Dtype.I8; Dtype.I16; Dtype.U16; Dtype.I32 ]

let test_round_floats () =
  check_float "f16 rounds" 2048.0 (Dtype.round Dtype.F16 2049.0);
  check_float "f32 exact small" 1.5 (Dtype.round Dtype.F32 1.5);
  (* f32 rounds a double that needs more than 24 bits of mantissa. *)
  let v = 16777217.0 in
  check_float "f32 rounds 2^24+1" 16777216.0 (Dtype.round Dtype.F32 v)

let test_round_integers () =
  check_float "i8 in range" 100.0 (Dtype.round Dtype.I8 100.0);
  check_float "i8 negative" (-100.0) (Dtype.round Dtype.I8 (-100.0));
  check_float "i8 wraps 128 -> -128" (-128.0) (Dtype.round Dtype.I8 128.0);
  check_float "i8 wraps 255 -> -1" (-1.0) (Dtype.round Dtype.I8 255.0);
  check_float "i8 wraps -129 -> 127" 127.0 (Dtype.round Dtype.I8 (-129.0));
  check_float "i16 wraps" (-32768.0) (Dtype.round Dtype.I16 32768.0);
  check_float "u16 wraps" 0.0 (Dtype.round Dtype.U16 65536.0);
  check_float "u16 negative wraps" 65535.0 (Dtype.round Dtype.U16 (-1.0));
  check_float "i32 max" 2147483647.0 (Dtype.round Dtype.I32 2147483647.0);
  check_float "i32 wraps" (-2147483648.0) (Dtype.round Dtype.I32 2147483648.0);
  check_float "truncation toward zero" 3.0 (Dtype.round Dtype.I8 3.9);
  check_float "negative truncation" (-3.0) (Dtype.round Dtype.I8 (-3.9))

let test_min_max () =
  check_float "i8 min" (-128.0) (Dtype.min_value Dtype.I8);
  check_float "i8 max" 127.0 (Dtype.max_value Dtype.I8);
  check_float "u16 min" 0.0 (Dtype.min_value Dtype.U16);
  check_float "u16 max" 65535.0 (Dtype.max_value Dtype.U16);
  check_float "f16 max" 65504.0 (Dtype.max_value Dtype.F16);
  check_float "f16 min" (-65504.0) (Dtype.min_value Dtype.F16)

let test_cast () =
  check_float "f32 -> i32 truncates" 3.0
    (Dtype.cast ~from:Dtype.F32 ~into:Dtype.I32 3.7);
  check_float "f16 -> i8 wraps" (-116.0)
    (Dtype.cast ~from:Dtype.F16 ~into:Dtype.I8 396.0);
  check_float "i32 -> f16 rounds" 2048.0
    (Dtype.cast ~from:Dtype.I32 ~into:Dtype.F16 2049.0);
  check_float "i32 -> i16 wraps" (-32768.0)
    (Dtype.cast ~from:Dtype.I32 ~into:Dtype.I16 32768.0);
  check_float "u16 -> i8" (-1.0)
    (Dtype.cast ~from:Dtype.U16 ~into:Dtype.I8 65535.0)

let test_equal_and_strings () =
  List.iter
    (fun dt ->
      check_bool (Dtype.to_string dt) true (Dtype.equal dt dt);
      check_bool "name non-empty" true (String.length (Dtype.to_string dt) > 0))
    all;
  check_bool "f16 <> i16" false (Dtype.equal Dtype.F16 Dtype.I16)

let prop_round_idempotent =
  QCheck.Test.make ~name:"round idempotent for every dtype" ~count:1000
    QCheck.(pair (int_bound 5) (float_bound_exclusive 1e6))
    (fun (di, v) ->
      let dt = List.nth all di in
      Dtype.round dt (Dtype.round dt v) = Dtype.round dt v)

let prop_integer_in_range =
  QCheck.Test.make ~name:"integer round lands in range" ~count:1000
    QCheck.(pair (int_bound 3) (float_range (-1e7) 1e7))
    (fun (di, v) ->
      let dt = List.nth [ Dtype.I8; Dtype.I16; Dtype.U16; Dtype.I32 ] di in
      let r = Dtype.round dt v in
      r >= Dtype.min_value dt && r <= Dtype.max_value dt && Float.is_integer r)

let () =
  Alcotest.run "dtype"
    [
      ( "semantics",
        [
          Alcotest.test_case "sizes" `Quick test_sizes;
          Alcotest.test_case "is_integer" `Quick test_is_integer;
          Alcotest.test_case "float rounding" `Quick test_round_floats;
          Alcotest.test_case "integer wrap" `Quick test_round_integers;
          Alcotest.test_case "min/max" `Quick test_min_max;
          Alcotest.test_case "cast" `Quick test_cast;
          Alcotest.test_case "equal/strings" `Quick test_equal_and_strings;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_round_idempotent; prop_integer_in_range ] );
    ]
