(* Integration tests of weighted sampling, the multinomial baseline and
   top-p (nucleus) sampling. *)

open Ascend

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* With unit weights the fp16 cdf is exact (n <= 2048) and the expected
   sample is analytic: first i with (i + 1) > theta * n. *)
let test_uniform_weights_exact () =
  let n = 2000 in
  let dev = Device.create () in
  let w = Device.of_array dev Dtype.F16 ~name:"w" (Array.make n 1.0) in
  List.iter
    (fun theta ->
      let expected = int_of_float (Float.floor (theta *. float_of_int n)) in
      let got, _ = Ops.Weighted_sampling.sample dev ~weights:w ~theta in
      check_int (Printf.sprintf "theta=%g" theta) expected got)
    [ 0.0; 0.1; 0.25; 0.5; 0.9; 0.9995 ]

let test_point_mass () =
  (* All mass on one index: every theta must return it. *)
  let n = 1000 in
  let data = Array.make n 0.0 in
  data.(617) <- 5.0;
  let dev = Device.create () in
  let w = Device.of_array dev Dtype.F16 ~name:"w" data in
  List.iter
    (fun theta ->
      let got, _ = Ops.Weighted_sampling.sample dev ~weights:w ~theta in
      check_int (Printf.sprintf "theta=%g" theta) 617 got)
    [ 0.0; 0.3; 0.99 ]

let test_matches_kernel_cdf () =
  (* For arbitrary weights the sample is defined against the kernel's
     own (fp16 MCScan) cdf. *)
  let n = 1500 in
  let data = Workload.Generators.small_ints ~seed:3 ~max_value:2 n in
  let dev = Device.create () in
  let w = Device.of_array dev Dtype.F16 ~name:"w" data in
  let cdf_t, _ = Scan.Mcscan.run dev w in
  let total = Global_tensor.get cdf_t (n - 1) in
  let theta = 0.61 in
  let target = theta *. total in
  let expected =
    let rec go i = if Global_tensor.get cdf_t i > target then i else go (i + 1) in
    go 0
  in
  let got, _ = Ops.Weighted_sampling.sample dev ~weights:w ~theta in
  check_int "kernel-cdf sample" expected got

let test_agrees_with_multinomial_baseline () =
  (* Both implementations draw from the same inverse-transform map when
     the cdf is exact. *)
  let n = 1024 in
  let data = Array.make n 1.0 in
  let dev = Device.create () in
  let w = Device.of_array dev Dtype.F16 ~name:"w" data in
  List.iter
    (fun theta ->
      let a, _ = Ops.Weighted_sampling.sample dev ~weights:w ~theta in
      let b, _ = Ops.Baseline.multinomial dev ~weights:w ~theta in
      check_int (Printf.sprintf "theta=%g" theta) a b)
    [ 0.05; 0.33; 0.77 ]

let test_multinomial_support_limit () =
  let dev = Device.create ~mode:Device.Cost_only () in
  let w =
    Device.alloc dev Dtype.F16 (Ops.Baseline.max_multinomial_support + 1)
      ~name:"w"
  in
  check_bool "limit enforced" true
    (try
       ignore (Ops.Baseline.multinomial dev ~weights:w ~theta:0.5);
       false
     with Invalid_argument _ -> true);
  (* Our operator accepts the same size (cost-only run). *)
  ignore (Ops.Weighted_sampling.sample dev ~weights:w ~theta:0.5);
  check_bool "ours unbounded" true true

let test_validation () =
  let dev = Device.create () in
  let w = Device.of_array dev Dtype.F16 ~name:"w" [| 1.0 |] in
  let raises f = try f (); false with Invalid_argument _ -> true in
  check_bool "theta range" true
    (raises (fun () -> ignore (Ops.Weighted_sampling.sample dev ~weights:w ~theta:1.0)));
  let zero = Device.of_array dev Dtype.F16 ~name:"z" [| 0.0; 0.0 |] in
  check_bool "zero weights" true
    (raises (fun () ->
         ignore (Ops.Weighted_sampling.sample dev ~weights:zero ~theta:0.5)))

(* Top-p. *)

let topp_setup ~seed ~vocab =
  let probs = Workload.Generators.softmax_probs ~seed vocab in
  let dev = Device.create () in
  let pt = Device.of_array dev Dtype.F16 ~name:"probs" probs in
  (dev, probs, pt)

let test_topp_token_valid_and_in_nucleus () =
  let vocab = 4096 in
  let dev, probs, pt = topp_setup ~seed:11 ~vocab in
  let r = Ops.Topp.sample dev ~probs:pt ~p:0.9 ~theta:0.35 in
  (match r.Ops.Topp.token with
  | Some tok ->
      check_bool "token in range" true (tok >= 0 && tok < vocab);
      (* The sampled token must have probability at least as large as
         the smallest nucleus member: being generous, it must be
         strictly positive. *)
      check_bool "token has mass" true (probs.(tok) > 0.0)
  | None -> Alcotest.fail "token missing");
  check_bool "nucleus nonempty" true (r.Ops.Topp.kept >= 1);
  check_bool "nucleus below vocab" true (r.Ops.Topp.kept < vocab)

let test_topp_kept_close_to_oracle () =
  let vocab = 2048 in
  let dev, probs, pt = topp_setup ~seed:13 ~vocab in
  let r = Ops.Topp.sample dev ~probs:pt ~p:0.8 ~theta:0.2 in
  let oracle = Scan.Reference.top_p_threshold_count probs ~p:0.8 in
  (* fp16 cumsum plateaus make the cutoff fuzzy; require the same order
     of magnitude (within a factor of two of the exact count). *)
  check_bool
    (Printf.sprintf "kept %d vs oracle %d" r.Ops.Topp.kept oracle)
    true
    (float_of_int r.Ops.Topp.kept >= 0.5 *. float_of_int oracle
    && float_of_int r.Ops.Topp.kept <= 2.0 *. float_of_int oracle +. 4.0)

let test_topp_p_one_keeps_everything_with_mass () =
  let vocab = 512 in
  let dev, probs, pt = topp_setup ~seed:17 ~vocab in
  let r = Ops.Topp.sample dev ~probs:pt ~p:1.0 ~theta:0.5 in
  let with_mass =
    Array.fold_left (fun a v -> if v > 0.0 then a + 1 else a) 0 probs
  in
  check_bool "keeps almost everything" true
    (r.Ops.Topp.kept >= with_mass - (vocab / 16))

let test_topp_small_p_keeps_head () =
  let vocab = 1024 in
  let dev, _, pt = topp_setup ~seed:19 ~vocab in
  let r = Ops.Topp.sample dev ~probs:pt ~p:0.05 ~theta:0.0 in
  check_bool "small nucleus" true
    (r.Ops.Topp.kept >= 1 && r.Ops.Topp.kept <= vocab / 4);
  (* theta = 0 always samples the most probable token. *)
  match r.Ops.Topp.token with
  | Some _ -> ()
  | None -> Alcotest.fail "token missing"

let test_topp_baseline_agrees_roughly () =
  let vocab = 2048 in
  let dev, _, pt = topp_setup ~seed:23 ~vocab in
  let r = Ops.Topp.sample dev ~probs:pt ~p:0.9 ~theta:0.4 in
  let b = Ops.Topp.sample_baseline dev ~probs:pt ~p:0.9 ~theta:0.4 in
  check_bool "baseline kept similar" true
    (float_of_int b.Ops.Topp.kept >= 0.5 *. float_of_int r.Ops.Topp.kept
    && float_of_int b.Ops.Topp.kept <= 2.0 *. float_of_int r.Ops.Topp.kept);
  check_bool "baseline token is none" true (b.Ops.Topp.token = None)

let test_topp_batch () =
  let batch = 4 and len = 1024 in
  let dev = Device.create () in
  let rows =
    Array.init batch (fun b -> Workload.Generators.softmax_probs ~seed:(50 + b) len)
  in
  let flat = Array.concat (Array.to_list rows) in
  let pt = Device.of_array dev Dtype.F16 ~name:"probs" flat in
  let thetas = [| 0.1; 0.4; 0.7; 0.95 |] in
  let results = Ops.Topp.sample_batch dev ~probs:pt ~batch ~len ~p:0.9 ~thetas in
  check_int "one result per row" batch (Array.length results);
  Array.iteri
    (fun b r ->
      match r.Ops.Topp.token with
      | Some tok ->
          check_bool
            (Printf.sprintf "row %d token in range" b)
            true
            (tok >= 0 && tok < len);
          check_bool
            (Printf.sprintf "row %d token has mass" b)
            true
            (rows.(b).(tok) > 0.0)
      | None -> Alcotest.fail "token missing")
    results;
  check_bool "batch validation" true
    (try
       ignore (Ops.Topp.sample_batch dev ~probs:pt ~batch ~len ~p:0.9 ~thetas:[| 0.5 |]);
       false
     with Invalid_argument _ -> true)

let test_topp_17_scans () =
  (* The headline structural claim: 16 radix scans + 1 cumsum, visible
     as at least 17 two-phase MCScan launches in the combined stats. *)
  let vocab = 1024 in
  let dev, _, pt = topp_setup ~seed:29 ~vocab in
  let r = Ops.Topp.sample dev ~probs:pt ~p:0.9 ~theta:0.4 in
  let phases = List.length r.Ops.Topp.stats.Stats.phases in
  check_bool (Printf.sprintf "phases %d >= 17 * 2" phases) true
    (phases >= 17 * 2)

let () =
  Alcotest.run "sampling"
    [
      ( "weighted",
        [
          Alcotest.test_case "uniform exact" `Quick test_uniform_weights_exact;
          Alcotest.test_case "point mass" `Quick test_point_mass;
          Alcotest.test_case "kernel cdf" `Quick test_matches_kernel_cdf;
          Alcotest.test_case "matches multinomial" `Quick
            test_agrees_with_multinomial_baseline;
          Alcotest.test_case "support limit" `Quick
            test_multinomial_support_limit;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "topp",
        [
          Alcotest.test_case "token valid" `Quick
            test_topp_token_valid_and_in_nucleus;
          Alcotest.test_case "kept near oracle" `Quick
            test_topp_kept_close_to_oracle;
          Alcotest.test_case "p=1" `Quick
            test_topp_p_one_keeps_everything_with_mass;
          Alcotest.test_case "small p" `Quick test_topp_small_p_keeps_head;
          Alcotest.test_case "baseline agrees" `Quick
            test_topp_baseline_agrees_roughly;
          Alcotest.test_case "batched rows" `Quick test_topp_batch;
          Alcotest.test_case "17 scans" `Quick test_topp_17_scans;
        ] );
    ]
