(* Integration tests of the cube reduction, the max-scan kernel and the
   multi-draw weighted sampler. *)

open Ascend

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 0.0))
let check_int = Alcotest.(check int)

(* Cube reduction. *)

let reduce_case ~seed n () =
  let data =
    let rng = Random.State.make [| seed |] in
    Array.init n (fun _ -> float_of_int (Random.State.int rng 7 - 3))
  in
  let expect = Scan.Reference.sum data in
  let dev = Device.create () in
  let x = Device.of_array dev Dtype.F16 ~name:"x" data in
  let total_cube, out, _ = Scan.Cube_reduce.run_cube dev x in
  check_float (Printf.sprintf "cube n=%d" n) expect total_cube;
  check_float "tensor result" expect (Global_tensor.get out 0);
  let total_vec, _, _ = Scan.Cube_reduce.run_vec dev x in
  check_float (Printf.sprintf "vec n=%d" n) expect total_vec

let test_reduce_engine_profiles () =
  (* The cube reduction must spend its compute on the cube engine, the
     vector reduction on the vector engines. *)
  let n = 200000 in
  let dev = Device.create ~mode:Device.Cost_only () in
  let x = Device.alloc dev Dtype.F16 n ~name:"x" in
  let busy name (st : Stats.t) =
    match List.assoc_opt name st.Stats.engine_busy with
    | Some c -> c
    | None -> 0.0
  in
  let _, _, st_cube = Scan.Cube_reduce.run_cube dev x in
  let _, _, st_vec = Scan.Cube_reduce.run_vec dev x in
  check_bool "cube reduce uses cube" true
    (busy "cube" st_cube > 10.0 *. busy "vec0" st_cube);
  check_bool "vec reduce uses vec" true
    (busy "vec0" st_vec > 10.0 *. busy "cube" st_vec);
  (* Both read the input exactly once (plus per-block constant loads
     and partials). *)
  check_bool "cube traffic ~ n" true
    (st_cube.Stats.gm_read_bytes < (2 * n) + 1_000_000);
  check_bool "vec traffic ~ n" true
    (st_vec.Stats.gm_read_bytes < (2 * n) + 10000)

(* Max scan. *)

let max_scan_case ~seed ~dt n () =
  let rng = Random.State.make [| seed |] in
  let data =
    Array.init n (fun _ -> float_of_int (Random.State.int rng 2000 - 1000))
  in
  let dev = Device.create () in
  let x = Device.of_array dev dt ~name:"x" data in
  let y, _ = Scan.Max_scan.run dev x in
  let acc = ref neg_infinity in
  Array.iteri
    (fun i v ->
      acc := Float.max !acc v;
      if Global_tensor.get y i <> !acc then
        Alcotest.failf "max scan mismatch at %d" i)
    data

let test_max_scan_monotone_indices () =
  (* The Segmented_scan use case: boundary markers (i+1 or 0). *)
  let n = 30000 in
  let data =
    Array.init n (fun i -> if i mod 977 = 0 then float_of_int (i + 1) else 0.0)
  in
  let dev = Device.create () in
  let x = Device.of_array dev Dtype.I32 ~name:"b" data in
  let y, _ = Scan.Max_scan.run dev x in
  for i = 0 to n - 1 do
    let expect = float_of_int ((i / 977 * 977) + 1) in
    if Global_tensor.get y i <> expect then
      Alcotest.failf "boundary scan mismatch at %d" i
  done

let test_max_scan_validation () =
  let dev = Device.create () in
  let xi = Device.of_array dev Dtype.I8 ~name:"x" [| 1.0 |] in
  check_bool "dtype" true
    (try
       ignore (Scan.Max_scan.run dev xi);
       false
     with Invalid_argument _ -> true)

(* Multi-draw weighted sampling. *)

let test_sample_many_matches_single () =
  let n = 3000 in
  let w = Array.make n 1.0 in
  let dev = Device.create () in
  let wt = Device.of_array dev Dtype.F16 ~name:"w" w in
  let thetas = [| 0.9; 0.1; 0.5005; 0.0; 0.333 |] in
  let many, _ = Ops.Weighted_sampling.sample_many dev ~weights:wt ~thetas in
  Array.iteri
    (fun j theta ->
      let single, _ = Ops.Weighted_sampling.sample dev ~weights:wt ~theta in
      check_int (Printf.sprintf "draw %d" j) single many.(j))
    thetas

let test_sample_many_order_preserved () =
  (* Results come back in input order even though the search is sorted. *)
  let n = 1000 in
  let dev = Device.create () in
  let wt = Device.of_array dev Dtype.F16 ~name:"w" (Array.make n 1.0) in
  let thetas = [| 0.75; 0.25 |] in
  let s, _ = Ops.Weighted_sampling.sample_many dev ~weights:wt ~thetas in
  check_int "first draw" 750 s.(0);
  check_int "second draw" 250 s.(1)

let test_sample_many_on_point_mass () =
  let n = 9000 in
  let w = Array.make n 0.0 in
  w.(4242) <- 3.0;
  let dev = Device.create () in
  let wt = Device.of_array dev Dtype.F16 ~name:"w" w in
  let thetas = Array.init 7 (fun j -> float_of_int j /. 8.0) in
  let s, _ = Ops.Weighted_sampling.sample_many dev ~weights:wt ~thetas in
  Array.iter (fun idx -> check_int "point mass" 4242 idx) s

let test_sample_many_scan_amortised () =
  (* k draws must cost far less than k single-draw pipelines. *)
  let n = 200000 in
  let dev = Device.create ~mode:Device.Cost_only () in
  let wt = Device.alloc dev Dtype.F16 n ~name:"w" in
  let thetas = Array.init 32 (fun j -> float_of_int j /. 33.0) in
  let _, st_many = Ops.Weighted_sampling.sample_many dev ~weights:wt ~thetas in
  let _, st_one = Ops.Weighted_sampling.sample dev ~weights:wt ~theta:0.5 in
  check_bool "amortised" true
    (st_many.Stats.seconds < 8.0 *. st_one.Stats.seconds)

let () =
  Alcotest.run "reduce_maxscan"
    [
      ( "cube_reduce",
        [
          Alcotest.test_case "small" `Quick (reduce_case ~seed:1 1000);
          Alcotest.test_case "one element" `Quick (reduce_case ~seed:2 1);
          Alcotest.test_case "tile boundary" `Quick (reduce_case ~seed:3 16384);
          Alcotest.test_case "tail tile" `Quick (reduce_case ~seed:4 16385);
          Alcotest.test_case "large" `Quick (reduce_case ~seed:5 300000);
          Alcotest.test_case "engine profiles" `Quick
            test_reduce_engine_profiles;
        ] );
      ( "max_scan",
        [
          Alcotest.test_case "f16" `Quick (max_scan_case ~seed:6 ~dt:Dtype.F16 20000);
          Alcotest.test_case "f32" `Quick (max_scan_case ~seed:7 ~dt:Dtype.F32 20000);
          Alcotest.test_case "i32" `Quick (max_scan_case ~seed:8 ~dt:Dtype.I32 20000);
          Alcotest.test_case "tiny" `Quick (max_scan_case ~seed:9 ~dt:Dtype.F32 3);
          Alcotest.test_case "boundary markers" `Quick
            test_max_scan_monotone_indices;
          Alcotest.test_case "validation" `Quick test_max_scan_validation;
        ] );
      ( "sample_many",
        [
          Alcotest.test_case "matches single" `Quick
            test_sample_many_matches_single;
          Alcotest.test_case "order preserved" `Quick
            test_sample_many_order_preserved;
          Alcotest.test_case "point mass" `Quick test_sample_many_on_point_mass;
          Alcotest.test_case "scan amortised" `Quick
            test_sample_many_scan_amortised;
        ] );
    ]
