(* Unit tests of the operator-layer utilities: the generic map kernel,
   slices, bitcasts, the indexed gather, and the simpler baselines. *)

open Ascend

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 0.0))
let check_int = Alcotest.(check int)

(* Map_kernel. *)

let test_map_kernel_basic () =
  let n = 30000 in
  let dev = Device.create () in
  let data = Array.init n (fun i -> float_of_int (i mod 100)) in
  let x = Device.of_array dev Dtype.F16 ~name:"x" data in
  let y = Device.alloc dev Dtype.F16 n ~name:"y" in
  let st =
    Ops.Map_kernel.run dev ~inputs:[ x ] ~output:y
      ~f:(fun ctx ~vec ~ins ~out ~scratch:_ ~len ->
        match ins with
        | [ src ] -> Vec.muls ctx ~vec ~src ~dst:out ~scalar:2.0 ~len ()
        | _ -> assert false)
  in
  for i = 0 to n - 1 do
    if Global_tensor.get y i <> 2.0 *. data.(i) then
      Alcotest.failf "map mismatch at %d" i
  done;
  check_bool "reads input" true (st.Stats.gm_read_bytes >= 2 * n);
  check_bool "writes output" true (st.Stats.gm_write_bytes >= 2 * n)

let test_map_kernel_two_inputs_and_scratch () =
  let n = 10000 in
  let dev = Device.create () in
  let a = Device.of_array dev Dtype.F16 ~name:"a"
      (Array.init n (fun i -> float_of_int (i mod 10))) in
  let b = Device.of_array dev Dtype.F16 ~name:"b"
      (Array.init n (fun i -> float_of_int (i mod 7))) in
  let y = Device.alloc dev Dtype.F16 n ~name:"y" in
  ignore
    (Ops.Map_kernel.run ~scratch:[ Dtype.F16 ] dev ~inputs:[ a; b ] ~output:y
       ~f:(fun ctx ~vec ~ins ~out ~scratch ~len ->
         match ins, scratch with
         | [ a; b ], [ t ] ->
             Vec.binop ctx ~vec Vec.Max ~src0:a ~src1:b ~dst:t ~len ();
             Vec.adds ctx ~vec ~src:t ~dst:out ~scalar:1.0 ~len ()
         | _ -> assert false));
  for i = 0 to n - 1 do
    let expect = Float.max (float_of_int (i mod 10)) (float_of_int (i mod 7)) +. 1.0 in
    if Global_tensor.get y i <> expect then Alcotest.failf "mismatch at %d" i
  done

let test_map_kernel_validation () =
  let dev = Device.create () in
  let a = Device.of_array dev Dtype.F16 ~name:"a" [| 1.0 |] in
  let y = Device.alloc dev Dtype.F16 2 ~name:"y" in
  check_bool "length mismatch" true
    (try
       ignore
         (Ops.Map_kernel.run dev ~inputs:[ a ] ~output:y
            ~f:(fun _ ~vec:_ ~ins:_ ~out:_ ~scratch:_ ~len:_ -> ()));
       false
     with Invalid_argument _ -> true)

(* Ops_util. *)

let test_slice () =
  let n = 20000 in
  let dev = Device.create () in
  let data = Array.init n float_of_int in
  let x = Device.of_array dev Dtype.F16 ~name:"x" data in
  let y, _ = Ops.Ops_util.slice dev x ~off:1000 ~len:500 in
  check_int "length" 500 (Global_tensor.length y);
  check_float "first" (Fp16.round 1000.0) (Global_tensor.get y 0);
  check_float "last" (Fp16.round 1499.0) (Global_tensor.get y 499);
  check_bool "bounds" true
    (try
       ignore (Ops.Ops_util.slice dev x ~off:(n - 10) ~len:20);
       false
     with Invalid_argument _ -> true)

let test_bitcast_roundtrip () =
  let dev = Device.create () in
  let data = [| 1.5; -2.0; 0.0; 65504.0; -0.25 |] in
  let x = Device.of_array dev Dtype.F16 ~name:"x" data in
  let u = Ops.Ops_util.bitcast_f16_to_u16 dev x in
  check_float "one bits" (float_of_int (Fp16.of_float 1.5)) (Global_tensor.get u 0);
  let back = Ops.Ops_util.bitcast_u16_to_f16 dev u in
  Array.iteri
    (fun i v -> check_float (Printf.sprintf "rt %d" i) v (Global_tensor.get back i))
    data

let test_gather_elements () =
  let dev = Device.create () in
  let ctx = Block.make ~device:dev ~idx:0 ~num_blocks:1 in
  let src = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 8 in
  let idx = Block.alloc ctx (Mem_kind.Ub 0) Dtype.I32 4 in
  let dst = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 4 in
  for i = 0 to 7 do Local_tensor.set src i (float_of_int (10 * i)) done;
  List.iteri (fun i v -> Local_tensor.set idx i v) [ 7.0; 0.0; 3.0; 3.0 ];
  Vec.gather_elements ctx ~src ~idx ~dst ~len:4 ();
  check_float "g0" 70.0 (Local_tensor.get dst 0);
  check_float "g1" 0.0 (Local_tensor.get dst 1);
  check_float "g3" 30.0 (Local_tensor.get dst 3);
  Local_tensor.set idx 0 99.0;
  check_bool "oob index" true
    (try
       Vec.gather_elements ctx ~src ~idx ~dst ~len:4 ();
       false
     with Invalid_argument _ -> true)

(* Baselines. *)

let test_clone_identity () =
  let n = 50000 in
  let dev = Device.create () in
  let data = Workload.Generators.uniform_f16 ~seed:1 n in
  let x = Device.of_array dev Dtype.F16 ~name:"x" data in
  let y, st = Ops.Baseline.clone dev x in
  for i = 0 to n - 1 do
    if Global_tensor.get y i <> data.(i) then Alcotest.failf "clone mismatch %d" i
  done;
  check_int "traffic = 2n elems" (2 * 2 * n) (Stats.gm_bytes st)

let test_baseline_cumsum_named () =
  let dev = Device.create () in
  let x = Device.of_array dev Dtype.F16 ~name:"x" (Array.make 100 1.0) in
  let y, st = Ops.Baseline.cumsum dev x in
  check_float "last" 100.0 (Global_tensor.get y 99);
  check_bool "renamed" true (st.Stats.name = "torch_cumsum")

let test_baseline_sort_validation () =
  let dev = Device.create () in
  let x3 = Device.of_array dev Dtype.F16 ~name:"x" [| 3.0; 1.0; 2.0 |] in
  check_bool "non power of two" true
    (try
       ignore (Ops.Baseline.sort dev x3);
       false
     with Invalid_argument _ -> true)

let test_multinomial_binary_search () =
  (* Non-uniform weights: first index whose cdf exceeds the target. *)
  let dev = Device.create () in
  let w = Device.of_array dev Dtype.F16 ~name:"w" [| 1.0; 0.0; 3.0; 0.0; 4.0 |] in
  (* cdf = 1 1 4 4 8; total 8. *)
  List.iter
    (fun (theta, expect) ->
      let got, _ = Ops.Baseline.multinomial dev ~weights:w ~theta in
      check_int (Printf.sprintf "theta=%g" theta) expect got)
    [ (0.0, 0); (0.124, 0); (0.126, 2); (0.499, 2); (0.51, 4); (0.99, 4) ]

let test_scalar_unit_costs () =
  let dev = Device.create () in
  let ctx = Block.make ~device:dev ~idx:0 ~num_blocks:1 in
  let x = Device.of_array dev Dtype.F16 ~name:"x" [| 5.0 |] in
  let t0 = Block.elapsed_cycles ctx in
  let v = Scalar_unit.gm_read ctx x 0 in
  check_float "reads value" 5.0 v;
  check_bool "charged" true (Block.elapsed_cycles ctx > t0);
  Scalar_unit.gm_write ctx x 0 7.0;
  check_float "writes value" 7.0 (Global_tensor.get x 0);
  let r = Block.finish ctx in
  check_int "scalar traffic" 4 (r.Block.gm_read_bytes + r.Block.gm_write_bytes)

let () =
  Alcotest.run "ops_extra"
    [
      ( "map_kernel",
        [
          Alcotest.test_case "basic" `Quick test_map_kernel_basic;
          Alcotest.test_case "two inputs + scratch" `Quick
            test_map_kernel_two_inputs_and_scratch;
          Alcotest.test_case "validation" `Quick test_map_kernel_validation;
        ] );
      ( "ops_util",
        [
          Alcotest.test_case "slice" `Quick test_slice;
          Alcotest.test_case "bitcast roundtrip" `Quick test_bitcast_roundtrip;
          Alcotest.test_case "gather_elements" `Quick test_gather_elements;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "clone" `Quick test_clone_identity;
          Alcotest.test_case "cumsum name" `Quick test_baseline_cumsum_named;
          Alcotest.test_case "sort validation" `Quick
            test_baseline_sort_validation;
          Alcotest.test_case "multinomial search" `Quick
            test_multinomial_binary_search;
          Alcotest.test_case "scalar unit" `Quick test_scalar_unit_costs;
        ] );
    ]
