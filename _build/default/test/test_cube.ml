(* Unit tests of the cube engine (Mmad), including the structured
   fast paths against the general triple-loop oracle. *)

open Ascend

let check_float = Alcotest.(check (float 0.0))
let check_bool = Alcotest.(check bool)

let ctx () =
  let dev = Device.create () in
  Block.make ~device:dev ~idx:0 ~num_blocks:1

let load t a = Array.iteri (fun i v -> Local_tensor.set t i v) a

(* Host oracle with the accumulator's rounding applied on store. *)
let matmul_oracle ~m ~k ~n a b =
  Array.init (m * n) (fun idx ->
      let i = idx / n and j = idx mod n in
      let acc = ref 0.0 in
      for t = 0 to k - 1 do
        acc := !acc +. (a.((i * k) + t) *. b.((t * n) + j))
      done;
      Dtype.round Dtype.F32 !acc)

let test_general_matmul () =
  let c = ctx () in
  let m, k, n = (3, 4, 2) in
  let av = Array.init (m * k) (fun i -> float_of_int (i + 1)) in
  let bv = Array.init (k * n) (fun i -> float_of_int ((i * 3 mod 7) - 3)) in
  let a = Block.alloc c Mem_kind.L0a Dtype.F16 (m * k) in
  let b = Block.alloc c Mem_kind.L0b Dtype.F16 (k * n) in
  let o = Block.alloc c Mem_kind.L0c Dtype.F32 (m * n) in
  load a av;
  load b bv;
  Cube.mmad c ~a ~b ~c:o ~m ~k ~n ~accumulate:false;
  let expect = matmul_oracle ~m ~k ~n av bv in
  Array.iteri
    (fun i e -> check_float (Printf.sprintf "c[%d]" i) e (Local_tensor.get o i))
    expect

let test_accumulate () =
  let c = ctx () in
  let s = 4 in
  let av = Array.make (s * s) 1.0 and bv = Array.make (s * s) 1.0 in
  let a = Block.alloc c Mem_kind.L0a Dtype.F16 (s * s) in
  let b = Block.alloc c Mem_kind.L0b Dtype.F16 (s * s) in
  let o = Block.alloc c Mem_kind.L0c Dtype.F32 (s * s) in
  load a av;
  load b bv;
  Cube.mmad c ~a ~b ~c:o ~m:s ~k:s ~n:s ~accumulate:false;
  check_float "first" 4.0 (Local_tensor.get o 0);
  Cube.mmad c ~a ~b ~c:o ~m:s ~k:s ~n:s ~accumulate:true;
  check_float "accumulated" 8.0 (Local_tensor.get o 0);
  Cube.mmad c ~a ~b ~c:o ~m:s ~k:s ~n:s ~accumulate:false;
  check_float "acc off overwrites" 4.0 (Local_tensor.get o 0)

let structured_matches_general which ~m ~s ~as_left () =
  let c = ctx () in
  let k = if as_left then m else s in
  (* Operand values: deterministic small ints so f16 stays exact. *)
  let data = Array.init (max (m * s) (s * s)) (fun i -> float_of_int ((i mod 5) - 2)) in
  if as_left then begin
    (* structured A (m x m) @ general B (m x s) *)
    let a = Block.alloc c Mem_kind.L0a Dtype.F16 (m * m) in
    Scan.Const_mat.fill a ~s:m which;
    let b = Block.alloc c Mem_kind.L0b Dtype.F16 (m * s) in
    load b (Array.sub data 0 (m * s));
    let o1 = Block.alloc c Mem_kind.L0c Dtype.F32 (m * s) in
    Cube.mmad c ~a ~b ~c:o1 ~m ~k ~n:s ~accumulate:false;
    (* Same with the tag stripped: the general path. *)
    Local_tensor.touch a;
    let o2 = Block.alloc c Mem_kind.L0c Dtype.F32 (m * s) in
    Cube.mmad c ~a ~b ~c:o2 ~m ~k ~n:s ~accumulate:false;
    for i = 0 to (m * s) - 1 do
      check_float
        (Printf.sprintf "left-struct[%d]" i)
        (Local_tensor.get o2 i) (Local_tensor.get o1 i)
    done
  end
  else begin
    (* general A (m x s) @ structured B (s x s) *)
    let a = Block.alloc c Mem_kind.L0a Dtype.F16 (m * s) in
    load a (Array.sub data 0 (m * s));
    let b = Block.alloc c Mem_kind.L0b Dtype.F16 (s * s) in
    Scan.Const_mat.fill b ~s which;
    let o1 = Block.alloc c Mem_kind.L0c Dtype.F32 (m * s) in
    Cube.mmad c ~a ~b ~c:o1 ~m ~k:s ~n:s ~accumulate:false;
    Local_tensor.touch b;
    let o2 = Block.alloc c Mem_kind.L0c Dtype.F32 (m * s) in
    Cube.mmad c ~a ~b ~c:o2 ~m ~k:s ~n:s ~accumulate:false;
    for i = 0 to (m * s) - 1 do
      check_float
        (Printf.sprintf "right-struct[%d]" i)
        (Local_tensor.get o2 i) (Local_tensor.get o1 i)
    done
  end

let test_row_scan_identity () =
  (* A @ U computes row-wise inclusive scans. *)
  let c = ctx () in
  let s = 8 in
  let av = Array.init (s * s) (fun i -> float_of_int (i mod 3)) in
  let a = Block.alloc c Mem_kind.L0a Dtype.F16 (s * s) in
  load a av;
  let u = Block.alloc c Mem_kind.L0b Dtype.F16 (s * s) in
  Scan.Const_mat.fill u ~s Scan.Const_mat.Upper;
  let o = Block.alloc c Mem_kind.L0c Dtype.F32 (s * s) in
  Cube.mmad c ~a ~b:u ~c:o ~m:s ~k:s ~n:s ~accumulate:false;
  for i = 0 to s - 1 do
    let acc = ref 0.0 in
    for j = 0 to s - 1 do
      acc := !acc +. av.((i * s) + j);
      check_float (Printf.sprintf "scan[%d,%d]" i j) !acc
        (Local_tensor.get o ((i * s) + j))
    done
  done

let test_equation_one () =
  (* scan(z) = A @ U + L^- @ A @ 1 over one full tile. *)
  let c = ctx () in
  let s = 8 in
  let z = Array.init (s * s) (fun i -> float_of_int ((i mod 7) - 3)) in
  let a = Block.alloc c Mem_kind.L0a Dtype.F16 (s * s) in
  load a z;
  let ones = Block.alloc c Mem_kind.L0b Dtype.F16 (s * s) in
  Scan.Const_mat.fill ones ~s Scan.Const_mat.Ones;
  let c1 = Block.alloc c Mem_kind.L0c Dtype.F32 (s * s) in
  Cube.mmad c ~a ~b:ones ~c:c1 ~m:s ~k:s ~n:s ~accumulate:false;
  let u = Block.alloc c Mem_kind.L0b Dtype.F16 (s * s) in
  Scan.Const_mat.fill u ~s Scan.Const_mat.Upper;
  let c2 = Block.alloc c Mem_kind.L0c Dtype.F32 (s * s) in
  Cube.mmad c ~a ~b:u ~c:c2 ~m:s ~k:s ~n:s ~accumulate:false;
  let lminus = Block.alloc c Mem_kind.L0a Dtype.F16 (s * s) in
  Scan.Const_mat.fill lminus ~s Scan.Const_mat.Strict_lower;
  let c1b = Block.alloc c Mem_kind.L0b Dtype.F16 (s * s) in
  for i = 0 to (s * s) - 1 do
    Local_tensor.set c1b i (Local_tensor.get c1 i)
  done;
  Cube.mmad c ~a:lminus ~b:c1b ~c:c2 ~m:s ~k:s ~n:s ~accumulate:true;
  let expect = Scan.Reference.inclusive_scan z in
  for i = 0 to (s * s) - 1 do
    check_float (Printf.sprintf "eq1[%d]" i) expect.(i) (Local_tensor.get c2 i)
  done

let test_int8_path () =
  let c = ctx () in
  let s = 4 in
  let a = Block.alloc c Mem_kind.L0a Dtype.I8 (s * s) in
  load a (Array.init (s * s) (fun i -> float_of_int ((i mod 5) - 2)));
  let b = Block.alloc c Mem_kind.L0b Dtype.I8 (s * s) in
  Scan.Const_mat.fill b ~s Scan.Const_mat.Upper;
  let o = Block.alloc c Mem_kind.L0c Dtype.I32 (s * s) in
  Cube.mmad c ~a ~b ~c:o ~m:s ~k:s ~n:s ~accumulate:false;
  check_float "int8 row scan" (-2.0) (Local_tensor.get o 0);
  check_float "int8 row total"
    (-2.0 -. 1.0 +. 0.0 +. 1.0)
    (Local_tensor.get o 3)

let test_int8_faster_than_f16 () =
  let dev = Device.create () in
  let cm = Device.cost dev in
  let f = Cost_model.mmad_cycles cm ~m:128 ~k:128 ~n:128 ~int8:false in
  let i = Cost_model.mmad_cycles cm ~m:128 ~k:128 ~n:128 ~int8:true in
  check_bool "int8 mmad cheaper" true (i < f)

let test_validation () =
  let c = ctx () in
  let a = Block.alloc c Mem_kind.L0a Dtype.F16 16 in
  let b = Block.alloc c Mem_kind.L0b Dtype.F16 16 in
  let o = Block.alloc c Mem_kind.L0c Dtype.F32 16 in
  let raises f = try f (); false with Invalid_argument _ -> true in
  check_bool "wrong buffer" true
    (raises (fun () -> Cube.mmad c ~a:b ~b:a ~c:o ~m:4 ~k:4 ~n:4 ~accumulate:false));
  check_bool "too short" true
    (raises (fun () -> Cube.mmad c ~a ~b ~c:o ~m:8 ~k:4 ~n:4 ~accumulate:false));
  check_bool "bad dims" true
    (raises (fun () -> Cube.mmad c ~a ~b ~c:o ~m:0 ~k:4 ~n:4 ~accumulate:false));
  let bi8 = Block.alloc c Mem_kind.L0b Dtype.I8 16 in
  check_bool "mixed dtype" true
    (raises (fun () -> Cube.mmad c ~a ~b:bi8 ~c:o ~m:4 ~k:4 ~n:4 ~accumulate:false))

let () =
  Alcotest.run "cube"
    [
      ( "mmad",
        [
          Alcotest.test_case "general matmul" `Quick test_general_matmul;
          Alcotest.test_case "accumulate" `Quick test_accumulate;
          Alcotest.test_case "U fast path = general" `Quick
            (structured_matches_general Scan.Const_mat.Upper ~m:5 ~s:6
               ~as_left:false);
          Alcotest.test_case "L fast path = general" `Quick
            (structured_matches_general Scan.Const_mat.Lower ~m:5 ~s:6
               ~as_left:false);
          Alcotest.test_case "1 fast path = general" `Quick
            (structured_matches_general Scan.Const_mat.Ones ~m:5 ~s:6
               ~as_left:false);
          Alcotest.test_case "L^- left fast path = general" `Quick
            (structured_matches_general Scan.Const_mat.Strict_lower ~m:6 ~s:5
               ~as_left:true);
          Alcotest.test_case "L left fast path = general" `Quick
            (structured_matches_general Scan.Const_mat.Lower ~m:6 ~s:5
               ~as_left:true);
          Alcotest.test_case "A @ U = row scans" `Quick test_row_scan_identity;
          Alcotest.test_case "equation 1" `Quick test_equation_one;
          Alcotest.test_case "int8 path" `Quick test_int8_path;
          Alcotest.test_case "int8 rate" `Quick test_int8_faster_than_f16;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
    ]
