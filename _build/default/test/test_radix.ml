(* Integration tests of the radix sort and the float codec. *)

open Ascend

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_codec_roundtrip_all () =
  for u = 0 to 0xFFFF do
    let e = Ops.Float_codec.encode_bits u in
    if Ops.Float_codec.decode_bits e <> u then
      Alcotest.failf "codec roundtrip failed for 0x%04X" u
  done

let test_codec_order_preserving () =
  (* On finite fp16 patterns, value order maps to unsigned-int order. *)
  let pats =
    [ 0xFBFF (* -65504 *); 0xC000 (* -2 *); 0xBC00 (* -1 *); 0x8001;
      0x8000 (* -0 *); 0x0000 (* +0 *); 0x0001; 0x3C00 (* 1 *);
      0x4000 (* 2 *); 0x7BFF (* 65504 *) ]
  in
  let enc = List.map Ops.Float_codec.encode_bits pats in
  let rec check = function
    | a :: (b :: _ as rest) ->
        check_bool "monotone" true (a < b);
        check rest
    | _ -> ()
  in
  check enc

let sorted_check ?(descending = false) values n =
  for i = 1 to n - 1 do
    let a = Global_tensor.get values (i - 1)
    and b = Global_tensor.get values i in
    let ok = if descending then a >= b else a <= b in
    if not ok then Alcotest.failf "not sorted at %d (%g vs %g)" i a b
  done

let test_sort_f16 () =
  List.iter
    (fun n ->
      let data = Workload.Generators.uniform_f16 ~seed:n ~lo:(-100.0) ~hi:100.0 n in
      let dev = Device.create () in
      let x = Device.of_array dev Dtype.F16 ~name:"x" data in
      let r = Ops.Radix_sort.run dev x in
      let expect, _ = Scan.Reference.stable_sort_with_indices data in
      for i = 0 to n - 1 do
        if Global_tensor.get r.Ops.Radix_sort.values i <> expect.(i) then
          Alcotest.failf "n=%d mismatch at %d" n i
      done)
    [ 1; 2; 100; 8192; 8193; 30000 ]

let test_sort_values_with_zeros_and_negatives () =
  let data = [| 0.0; -0.0; 1.5; -1.5; 0.25; -65504.0; 65504.0; -0.25; 2.0 |] in
  let dev = Device.create () in
  let x = Device.of_array dev Dtype.F16 ~name:"x" data in
  let r = Ops.Radix_sort.run dev x in
  sorted_check r.Ops.Radix_sort.values (Array.length data);
  Alcotest.(check (float 0.0)) "min" (-65504.0)
    (Global_tensor.get r.Ops.Radix_sort.values 0);
  Alcotest.(check (float 0.0)) "max" 65504.0
    (Global_tensor.get r.Ops.Radix_sort.values 8)

let test_sort_indices_permutation_and_stability () =
  let n = 20000 in
  (* Coarse values force many duplicates to exercise stability. *)
  let data =
    Array.init n (fun i -> float_of_int ((i * 31) mod 16) /. 4.0)
  in
  let dev = Device.create () in
  let x = Device.of_array dev Dtype.F16 ~name:"x" data in
  let r = Ops.Radix_sort.run ~with_indices:true dev x in
  let gi = Option.get r.Ops.Radix_sort.indices in
  let seen = Array.make n false in
  for i = 0 to n - 1 do
    let j = int_of_float (Global_tensor.get gi i) in
    check_bool "valid index" true (j >= 0 && j < n && not seen.(j));
    seen.(j) <- true;
    if data.(j) <> Global_tensor.get r.Ops.Radix_sort.values i then
      Alcotest.failf "index does not map back at %d" i
  done;
  for i = 1 to n - 1 do
    let a = Global_tensor.get r.Ops.Radix_sort.values (i - 1)
    and b = Global_tensor.get r.Ops.Radix_sort.values i in
    if a = b then begin
      let ja = int_of_float (Global_tensor.get gi (i - 1))
      and jb = int_of_float (Global_tensor.get gi i) in
      check_bool "stable among equals" true (ja < jb)
    end
  done

let test_sort_descending () =
  let n = 10000 in
  let data = Workload.Generators.uniform_f16 ~seed:5 n in
  let dev = Device.create () in
  let x = Device.of_array dev Dtype.F16 ~name:"x" data in
  let r = Ops.Radix_sort.run ~descending:true dev x in
  sorted_check ~descending:true r.Ops.Radix_sort.values n

let test_sort_u16 () =
  let n = 10000 in
  let data =
    Array.init n (fun i -> float_of_int ((i * 40503) land 0xFFFF))
  in
  let dev = Device.create () in
  let x = Device.of_array dev Dtype.U16 ~name:"x" data in
  let r = Ops.Radix_sort.run dev x in
  sorted_check r.Ops.Radix_sort.values n;
  let rd = Ops.Radix_sort.run ~descending:true dev x in
  sorted_check ~descending:true rd.Ops.Radix_sort.values n

let test_sort_u16_low_bits () =
  (* bits=4 suffices for keys < 16 and runs 4 passes only. *)
  let n = 5000 in
  let data = Array.init n (fun i -> float_of_int ((i * 7) mod 16)) in
  let dev = Device.create () in
  let x = Device.of_array dev Dtype.U16 ~name:"x" data in
  let r4 = Ops.Radix_sort.run ~bits:4 dev x in
  sorted_check r4.Ops.Radix_sort.values n;
  let r16 = Ops.Radix_sort.run ~bits:16 dev x in
  check_bool "fewer bits is faster" true
    (r4.Ops.Radix_sort.stats.Stats.seconds
     < r16.Ops.Radix_sort.stats.Stats.seconds /. 2.0)

let test_matches_baseline_sort () =
  let n = 8192 in
  let data = Workload.Generators.uniform_f16 ~seed:77 n in
  let dev = Device.create () in
  let x = Device.of_array dev Dtype.F16 ~name:"x" data in
  let r = Ops.Radix_sort.run dev x in
  let b, _ = Ops.Baseline.sort dev x in
  for i = 0 to n - 1 do
    if Global_tensor.get r.Ops.Radix_sort.values i <> Global_tensor.get b i
    then Alcotest.failf "radix and bitonic disagree at %d" i
  done

let test_validation () =
  let dev = Device.create () in
  let x = Device.of_array dev Dtype.F16 ~name:"x" [| 1.0 |] in
  check_bool "bits range" true
    (try
       ignore (Ops.Radix_sort.run ~bits:0 dev x);
       false
     with Invalid_argument _ -> true);
  check_bool "f16 needs 16 bits" true
    (try
       ignore (Ops.Radix_sort.run ~bits:8 dev x);
       false
     with Invalid_argument _ -> true);
  let xi = Device.of_array dev Dtype.I32 ~name:"xi" [| 1.0 |] in
  check_bool "dtype" true
    (try
       ignore (Ops.Radix_sort.run dev xi);
       false
     with Invalid_argument _ -> true)

let test_instruction_mix () =
  (* 16 bit-splits over n = 16384 (one MCScan tile per scan): one mmad
     per exclusive scan, two gather_masks per gather tile per split
     (values only), plus one RadixSingle extraction per pass. *)
  let n = 16384 in
  let data = Workload.Generators.uniform_f16 ~seed:3 n in
  let dev = Device.create () in
  let x = Device.of_array dev Dtype.F16 ~name:"x" data in
  let r = Ops.Radix_sort.run dev x in
  let st = r.Ops.Radix_sort.stats in
  check_int "one mmad per bit pass" 16 (Stats.op_count st "mmad");
  check_bool "gathers present" true (Stats.op_count st "gather_mask" >= 2 * 16);
  check_bool "bit extraction shifts" true
    (Stats.op_count st "shift_right" > 0)

let test_pass_count_in_stats () =
  (* 16 bit passes = 16 splits, each at least one scan: the combined
     stats must contain well over 32 phases. *)
  let n = 4096 in
  let data = Workload.Generators.uniform_f16 ~seed:9 n in
  let dev = Device.create () in
  let x = Device.of_array dev Dtype.F16 ~name:"x" data in
  let r = Ops.Radix_sort.run dev x in
  check_int "phase count"
    (16 * 4 + 2)
    (List.length r.Ops.Radix_sort.stats.Stats.phases)

let () =
  Alcotest.run "radix"
    [
      ( "codec",
        [
          Alcotest.test_case "roundtrip all" `Quick test_codec_roundtrip_all;
          Alcotest.test_case "order preserving" `Quick
            test_codec_order_preserving;
        ] );
      ( "sort",
        [
          Alcotest.test_case "f16 various n" `Quick test_sort_f16;
          Alcotest.test_case "zeros and negatives" `Quick
            test_sort_values_with_zeros_and_negatives;
          Alcotest.test_case "indices + stability" `Quick
            test_sort_indices_permutation_and_stability;
          Alcotest.test_case "descending" `Quick test_sort_descending;
          Alcotest.test_case "u16" `Quick test_sort_u16;
          Alcotest.test_case "u16 low bits" `Quick test_sort_u16_low_bits;
          Alcotest.test_case "matches bitonic" `Quick
            test_matches_baseline_sort;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "pass structure" `Quick test_pass_count_in_stats;
          Alcotest.test_case "instruction mix" `Quick test_instruction_mix;
        ] );
    ]
