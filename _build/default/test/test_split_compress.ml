(* Integration tests of SplitInd and Compress against the oracles. *)

open Ascend

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let make_case ~seed ~density n =
  let data = Workload.Generators.uniform_f16 ~seed n in
  let flags = Workload.Generators.ones_and_zeros ~seed:(seed + 1) ~density n in
  (data, flags)

let run_split ?with_indices ~data ~flags () =
  let dev = Device.create () in
  let x = Device.of_array dev Dtype.F16 ~name:"x" data in
  let f = Device.of_array dev Dtype.I8 ~name:"f" flags in
  (dev, Ops.Split.run ?with_indices dev ~x ~flags:f ())

let check_split_result ~data ~flags (r : Ops.Split.result) ~with_indices =
  let n = Array.length data in
  let exp_vals, exp_idx = Scan.Reference.split data ~flags in
  let trues = Array.fold_left (fun a v -> if v <> 0.0 then a + 1 else a) 0 flags in
  check_int "true_count" trues r.Ops.Split.true_count;
  for i = 0 to n - 1 do
    if Global_tensor.get r.Ops.Split.values i <> exp_vals.(i) then
      Alcotest.failf "value mismatch at %d" i
  done;
  match r.Ops.Split.indices, with_indices with
  | Some gi, true ->
      for i = 0 to n - 1 do
        if int_of_float (Global_tensor.get gi i) <> exp_idx.(i) then
          Alcotest.failf "index mismatch at %d" i
      done
  | None, false -> ()
  | Some _, false -> Alcotest.fail "unexpected indices"
  | None, true -> Alcotest.fail "missing indices"

let split_case ~seed ~density n with_indices () =
  let data, flags = make_case ~seed ~density n in
  let _, r = run_split ~with_indices ~data ~flags () in
  check_split_result ~data ~flags r ~with_indices

let test_all_true_all_false () =
  List.iter
    (fun density ->
      let n = 5000 in
      let data = Workload.Generators.uniform_f16 ~seed:3 n in
      let flags = Array.make n density in
      let _, r = run_split ~with_indices:true ~data ~flags () in
      check_split_result ~data ~flags r ~with_indices:true)
    [ 0.0; 1.0 ]

let test_indices_chaining () =
  (* indices_in permutes through a second split like a radix pass. *)
  let n = 4000 in
  let data = Workload.Generators.uniform_f16 ~seed:11 n in
  let flags1 = Workload.Generators.ones_and_zeros ~seed:12 ~density:0.5 n in
  let dev = Device.create () in
  let x = Device.of_array dev Dtype.F16 ~name:"x" data in
  let f1 = Device.of_array dev Dtype.I8 ~name:"f1" flags1 in
  let r1 = Ops.Split.run ~with_indices:true dev ~x ~flags:f1 () in
  let flags2 =
    Array.init n (fun i ->
        if Global_tensor.get r1.Ops.Split.values i > 0.0 then 1.0 else 0.0)
  in
  let f2 = Device.of_array dev Dtype.I8 ~name:"f2" flags2 in
  let r2 =
    Ops.Split.run ~with_indices:true ?indices_in:r1.Ops.Split.indices dev
      ~x:r1.Ops.Split.values ~flags:f2 ()
  in
  (* After both splits, index i of the output must still point at the
     original element. *)
  (match r2.Ops.Split.indices with
  | Some gi ->
      for i = 0 to n - 1 do
        let src = int_of_float (Global_tensor.get gi i) in
        if data.(src) <> Global_tensor.get r2.Ops.Split.values i then
          Alcotest.failf "chained index broken at %d" i
      done
  | None -> Alcotest.fail "indices missing");
  check_bool "chain ok" true true

let test_emit_falses_off () =
  let n = 3000 in
  let data, flags = make_case ~seed:21 ~density:0.3 n in
  let dev = Device.create () in
  let x = Device.of_array dev Dtype.F16 ~name:"x" data in
  let f = Device.of_array dev Dtype.I8 ~name:"f" flags in
  let r = Ops.Split.run ~emit_falses:false dev ~x ~flags:f () in
  let exp = Scan.Reference.compress data ~mask:flags in
  Array.iteri
    (fun i v ->
      if Global_tensor.get r.Ops.Split.values i <> v then
        Alcotest.failf "true-run mismatch at %d" i)
    exp

let test_compress_matches_oracle () =
  List.iter
    (fun (n, density) ->
      let data, mask = make_case ~seed:(n + 1) ~density n in
      let dev = Device.create () in
      let x = Device.of_array dev Dtype.F16 ~name:"x" data in
      let m = Device.of_array dev Dtype.I8 ~name:"m" mask in
      let r = Ops.Compress.run dev ~x ~mask:m () in
      let exp = Scan.Reference.compress data ~mask in
      check_int
        (Printf.sprintf "count n=%d" n)
        (Array.length exp) r.Ops.Compress.count;
      Array.iteri
        (fun i v ->
          if Global_tensor.get r.Ops.Compress.values i <> v then
            Alcotest.failf "compress mismatch n=%d idx=%d" n i)
        exp)
    [ (1, 1.0); (100, 0.5); (8192, 0.1); (8193, 0.9); (50000, 0.5) ]

let test_compress_equals_masked_select () =
  let n = 4000 in
  let data, mask = make_case ~seed:31 ~density:0.4 n in
  let dev = Device.create () in
  let x = Device.of_array dev Dtype.F16 ~name:"x" data in
  let m = Device.of_array dev Dtype.I8 ~name:"m" mask in
  let r = Ops.Compress.run dev ~x ~mask:m () in
  let bv, bcount, _ = Ops.Baseline.masked_select dev ~x ~mask:m in
  check_int "counts agree" bcount r.Ops.Compress.count;
  for i = 0 to bcount - 1 do
    if Global_tensor.get bv i <> Global_tensor.get r.Ops.Compress.values i then
      Alcotest.failf "baseline disagrees at %d" i
  done

let test_validation () =
  let dev = Device.create () in
  let x = Device.of_array dev Dtype.F16 ~name:"x" [| 1.0; 2.0 |] in
  let bad_flags = Device.of_array dev Dtype.I8 ~name:"f" [| 1.0 |] in
  check_bool "length mismatch" true
    (try
       ignore (Ops.Split.run dev ~x ~flags:bad_flags ());
       false
     with Invalid_argument _ -> true);
  let f32_flags = Device.of_array dev Dtype.F32 ~name:"f32" [| 1.0; 0.0 |] in
  check_bool "flag dtype" true
    (try
       ignore (Ops.Split.run dev ~x ~flags:f32_flags ());
       false
     with Invalid_argument _ -> true);
  let xi32 = Device.of_array dev Dtype.I32 ~name:"xi" [| 1.0; 2.0 |] in
  let f = Device.of_array dev Dtype.I8 ~name:"f" [| 1.0; 0.0 |] in
  check_bool "x dtype" true
    (try
       ignore (Ops.Split.run dev ~x:xi32 ~flags:f ());
       false
     with Invalid_argument _ -> true)

let test_split_traffic () =
  (* Split must at least read x and the flags and write the values. *)
  let n = 30000 in
  let data, flags = make_case ~seed:41 ~density:0.5 n in
  let _, r = run_split ~data ~flags () in
  let st = r.Ops.Split.stats in
  check_bool "reads" true (st.Stats.gm_read_bytes >= 3 * n);
  check_bool "writes" true (st.Stats.gm_write_bytes >= 2 * n)

let () =
  Alcotest.run "split_compress"
    [
      ( "split",
        [
          Alcotest.test_case "basic n=1000" `Quick
            (split_case ~seed:1 ~density:0.5 1000 true);
          Alcotest.test_case "no indices" `Quick
            (split_case ~seed:2 ~density:0.5 1000 false);
          Alcotest.test_case "sparse trues" `Quick
            (split_case ~seed:3 ~density:0.05 20000 true);
          Alcotest.test_case "dense trues" `Quick
            (split_case ~seed:4 ~density:0.95 20000 true);
          Alcotest.test_case "tile boundary 8192" `Quick
            (split_case ~seed:5 ~density:0.5 8192 true);
          Alcotest.test_case "tile boundary 8193" `Quick
            (split_case ~seed:6 ~density:0.5 8193 true);
          Alcotest.test_case "single element" `Quick
            (split_case ~seed:7 ~density:0.5 1 true);
          Alcotest.test_case "large 60000" `Quick
            (split_case ~seed:8 ~density:0.5 60000 true);
          Alcotest.test_case "all true / all false" `Quick
            test_all_true_all_false;
          Alcotest.test_case "indices chaining" `Quick test_indices_chaining;
          Alcotest.test_case "emit_falses off" `Quick test_emit_falses_off;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "traffic" `Quick test_split_traffic;
        ] );
      ( "compress",
        [
          Alcotest.test_case "oracle" `Quick test_compress_matches_oracle;
          Alcotest.test_case "matches masked_select" `Quick
            test_compress_equals_masked_select;
        ] );
    ]
