open Ascend

type result = {
  values : Global_tensor.t;
  indices : Global_tensor.t option;
  stats : Stats.t;
}

(* Pre-processing pass: order-preserving encode of the u16 key patterns
   (plus a full complement for descending order). *)
let encode_pass device ~is_float ~descending keys =
  let out =
    Device.alloc device Dtype.U16 (Global_tensor.length keys)
      ~name:(Global_tensor.name keys ^ "_enc")
  in
  let stats =
    Map_kernel.run ~name:"radix_encode" ~scratch:[ Dtype.U16 ] device
      ~inputs:[ keys ] ~output:out
      ~f:(fun ctx ~vec ~ins ~out ~scratch ~len ->
        match ins, scratch with
        | [ src ], [ tmp ] ->
            if is_float then begin
              Float_codec.encode_tile ctx ~vec ~src ~dst:out ~tmp ~len ();
              if descending then
                Vec.bit_not ctx ~vec ~src:out ~dst:out ~len ()
            end
            else
              (* Raw u16 keys: descending order is a plain complement. *)
              Vec.bit_not ctx ~vec ~src ~dst:out ~len ()
        | _, _ -> assert false)
  in
  (out, stats)

let decode_pass device ~is_float ~descending keys =
  let out =
    Device.alloc device Dtype.U16 (Global_tensor.length keys)
      ~name:(Global_tensor.name keys ^ "_dec")
  in
  let stats =
    Map_kernel.run ~name:"radix_decode" ~scratch:[ Dtype.U16 ] device
      ~inputs:[ keys ] ~output:out
      ~f:(fun ctx ~vec ~ins ~out ~scratch ~len ->
        match ins, scratch with
        | [ src ], [ tmp ] ->
            if is_float then begin
              if descending then begin
                Vec.bit_not ctx ~vec ~src ~dst:out ~len ();
                Float_codec.decode_tile ctx ~vec ~src:out ~dst:out ~tmp ~len ()
              end
              else Float_codec.decode_tile ctx ~vec ~src ~dst:out ~tmp ~len ()
            end
            else Vec.bit_not ctx ~vec ~src ~dst:out ~len ()
        | _, _ -> assert false)
  in
  (out, stats)

(* RadixSingle: flags.(i) = 1 - bit b of keys.(i) — elements whose
   current bit is 0 must go first in an ascending LSB radix pass. *)
let extract_pass device ~bit keys =
  let flags =
    Device.alloc device Dtype.I8 (Global_tensor.length keys)
      ~name:(Printf.sprintf "%s_bit%d" (Global_tensor.name keys) bit)
  in
  let stats =
    Map_kernel.run ~name:"radix_single" ~scratch:[ Dtype.U16 ] device
      ~inputs:[ keys ] ~output:flags
      ~f:(fun ctx ~vec ~ins ~out ~scratch ~len ->
        match ins, scratch with
        | [ src ], [ tmp ] ->
            Vec.shift_right ctx ~vec ~src ~dst:tmp ~bits:bit ~len ();
            Vec.bit_ands ctx ~vec ~src:tmp ~dst:tmp ~mask:1 ~len ();
            Vec.bit_xors ctx ~vec ~src:tmp ~dst:tmp ~mask:1 ~len ();
            Vec.cast ctx ~vec ~src:tmp ~dst:out ~len ()
        | _, _ -> assert false)
  in
  (flags, stats)

let run ?(s = 128) ?(with_indices = false) ?(descending = false) ?(bits = 16)
    device x =
  if bits < 1 || bits > 16 then
    invalid_arg "Radix_sort.run: bits must be in [1, 16]";
  let is_float =
    match Global_tensor.dtype x with
    | Dtype.F16 -> true
    | Dtype.U16 -> false
    | d ->
        invalid_arg
          (Printf.sprintf "Radix_sort.run: unsupported dtype %s"
             (Dtype.to_string d))
  in
  if is_float && bits <> 16 then
    invalid_arg "Radix_sort.run: f16 keys require all 16 bits";
  let all_stats = ref [] in
  let note st = all_stats := st :: !all_stats in
  (* Bitcast to u16 patterns (zero cost) and encode when needed. *)
  let keys0 = if is_float then Ops_util.bitcast_f16_to_u16 device x else x in
  let keys0 =
    if is_float || descending then begin
      let k, st = encode_pass device ~is_float ~descending keys0 in
      note st;
      k
    end
    else keys0
  in
  (* 16 stable bit-splits, least significant bit first, chaining the
     permuted source indices through every pass. *)
  let keys = ref keys0 and idx = ref None in
  for bit = 0 to bits - 1 do
    let flags, st_extract = extract_pass device ~bit !keys in
    note st_extract;
    let r =
      Split.run ~s ~with_indices ?indices_in:!idx device ~x:!keys ~flags ()
    in
    note r.Split.stats;
    keys := r.Split.values;
    idx := r.Split.indices
  done;
  (* Post-processing: decode back to the original key domain. *)
  let values =
    if is_float then begin
      let dec, st = decode_pass device ~is_float ~descending !keys in
      note st;
      Ops_util.bitcast_u16_to_f16 device dec
    end
    else if descending then begin
      let dec, st = decode_pass device ~is_float ~descending !keys in
      note st;
      dec
    end
    else !keys
  in
  {
    values;
    indices = !idx;
    stats = Stats.combine ~name:"radix_sort" (List.rev !all_stats);
  }
