(** Parallel weighted sampling by inverse transform.

    Given [n] non-negative weights, draws index [i] with probability
    proportional to [w_i]: scan the weights with MCScan, scale the
    uniform draw [theta] by the total, mark every position whose
    cumulative sum exceeds the target with a vector compare pass, and
    locate the first marked position with {!Split} (its first output
    index). Unlike the stock [torch.multinomial], the support size is
    unbounded. *)

val sample :
  ?s:int ->
  Ascend.Device.t ->
  weights:Ascend.Global_tensor.t ->
  theta:float ->
  int * Ascend.Stats.t
(** [weights] must be [F16] with non-negative entries and positive sum;
    [theta] in [0, 1). Returns the sampled index. In cost-only mode
    the data path is skipped and index 0 is returned (the expected
    flag density used for traffic is [1 - theta]). *)

val sample_many :
  ?s:int ->
  Ascend.Device.t ->
  weights:Ascend.Global_tensor.t ->
  thetas:float array ->
  int array * Ascend.Stats.t
(** Draw one sample per uniform draw with a single scan and a single
    streaming pass over the cdf (the multi-sample scenario of Section 5;
    amortises the scan across all draws). The draws are searched in
    sorted order; results are returned in the input order. Per tile the
    pass spends two vector instructions per draw that lands in it.
    Cost-only mode assumes uniformly spread draws. *)
