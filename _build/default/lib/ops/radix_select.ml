open Ascend

(* Extract the mask (bit b set) of u16 keys into int8 flags. *)
let bit_mask_pass device ~bit keys =
  let flags =
    Device.alloc device Dtype.I8 (Global_tensor.length keys)
      ~name:(Printf.sprintf "rsel_bit%d" bit)
  in
  let stats =
    Map_kernel.run ~name:"rsel_mask" ~scratch:[ Dtype.U16 ] device
      ~inputs:[ keys ] ~output:flags
      ~f:(fun ctx ~vec ~ins ~out ~scratch ~len ->
        match ins, scratch with
        | [ src ], [ tmp ] ->
            Vec.shift_right ctx ~vec ~src ~dst:tmp ~bits:bit ~len ();
            Vec.bit_ands ctx ~vec ~src:tmp ~dst:tmp ~mask:1 ~len ();
            Vec.cast ctx ~vec ~src:tmp ~dst:out ~len ()
        | _, _ -> assert false)
  in
  (flags, stats)

(* Decode a u16 slice back to fp16 values. *)
let decode device keys ~stats =
  let out =
    Device.alloc device Dtype.U16 (Global_tensor.length keys)
      ~name:"rsel_dec"
  in
  let st =
    Map_kernel.run ~name:"rsel_decode" ~scratch:[ Dtype.U16 ] device
      ~inputs:[ keys ] ~output:out
      ~f:(fun ctx ~vec ~ins ~out ~scratch ~len ->
        match ins, scratch with
        | [ src ], [ tmp ] ->
            Float_codec.decode_tile ctx ~vec ~src ~dst:out ~tmp ~len ()
        | _, _ -> assert false)
  in
  stats := st :: !stats;
  Ops_util.bitcast_u16_to_f16 device out

let run ?(s = 128) device x ~k =
  if not (Device.functional device) then
    invalid_arg "Radix_select.run: functional mode only";
  let n = Global_tensor.length x in
  if k <= 0 || k > n || k > 4096 then
    invalid_arg "Radix_select.run: k out of range (1 .. min n 4096)";
  if not (Dtype.equal (Global_tensor.dtype x) Dtype.F16) then
    invalid_arg "Radix_select.run: input must be f16";
  let all_stats = ref [] in
  let note st = all_stats := st :: !all_stats in
  (* Encode so that unsigned order equals value order. *)
  let bits0 = Ops_util.bitcast_f16_to_u16 device x in
  let enc = Device.alloc device Dtype.U16 n ~name:"rsel_enc" in
  note
    (Map_kernel.run ~name:"rsel_encode" ~scratch:[ Dtype.U16 ] device
       ~inputs:[ bits0 ] ~output:enc
       ~f:(fun ctx ~vec ~ins ~out ~scratch ~len ->
         match ins, scratch with
         | [ src ], [ tmp ] ->
             Float_codec.encode_tile ctx ~vec ~src ~dst:out ~tmp ~len ()
         | _, _ -> assert false));
  (* MSB-first refinement. [chosen] accumulates whole groups known to
     be in the answer; [cand] is the still-ambiguous candidate set. *)
  let chosen = Device.alloc device Dtype.U16 k ~name:"rsel_chosen" in
  let chosen_off = ref 0 in
  let cand = ref enc and need = ref k and bit = ref 15 in
  while !need > 0 && !bit >= 0 && Global_tensor.length !cand > !need do
    let flags, st_mask = bit_mask_pass device ~bit:!bit !cand in
    note st_mask;
    let r = Split.run ~s device ~x:!cand ~flags () in
    note r.Split.stats;
    let ones = r.Split.true_count in
    let m = Global_tensor.length !cand in
    if ones >= !need then begin
      if ones = m then
        (* No discrimination at this bit; move on. *)
        decr bit
      else begin
        let sub, st = Ops_util.slice device r.Split.values ~off:0 ~len:ones in
        note st;
        cand := sub;
        decr bit
      end
    end
    else begin
      (* Every set-bit candidate is in the answer. *)
      if ones > 0 then begin
        note
          (Ops_util.blit device ~src:r.Split.values ~dst:chosen
             ~dst_off:!chosen_off ~len:ones ());
        chosen_off := !chosen_off + ones;
        need := !need - ones
      end;
      let rest, st = Ops_util.slice device r.Split.values ~off:ones ~len:(m - ones) in
      note st;
      cand := rest;
      decr bit
    end
  done;
  (* Ties: any [need] remaining candidates complete the answer. *)
  if !need > 0 then begin
    note (Ops_util.blit device ~src:!cand ~dst:chosen ~dst_off:!chosen_off ~len:!need ());
    chosen_off := !chosen_off + !need
  end;
  assert (!chosen_off = k);
  (* Decode and produce the k values in descending order (k <= 4096:
     one vector-sort pass on a single core). *)
  let vals = decode device chosen ~stats:all_stats in
  let out = Device.alloc device Dtype.F16 k ~name:(Global_tensor.name x ^ "_rselk") in
  let body ctx =
    if Block.idx ctx = 0 then begin
      let buf = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 (max k 1) in
      Mte.copy_in ctx ~engine:(Engine.Vec_mte_in 0) ~src:vals ~dst:buf ~len:k ();
      Vec.sort_region ctx ~descending:true ~src:buf ~dst:buf ~len:k ();
      Mte.copy_out ctx ~engine:(Engine.Vec_mte_out 0) ~src:buf ~dst:out ~len:k ()
    end
  in
  note (Launch.run ~name:"rsel_finish" device ~blocks:1 body);
  (out, Stats.combine ~name:"radix_select" (List.rev !all_stats))
