open Ascend

let small_threshold = 8192
let max_rounds = 40

(* Final single-vector-core finish: stream [gt] through the vector-sort
   instructions merging into a running top-[need] buffer, then write the
   [need] best (descending) to [out] at [out_off]. *)
let finish_small device gt ~need ~out ~out_off =
  let n = Global_tensor.length gt in
  let body ctx =
    if Block.idx ctx = 0 then begin
      let dt = Global_tensor.dtype gt in
      let cap = max need 1 in
      let buf = Block.alloc ctx (Mem_kind.Ub 0) dt (2 * cap) in
      let tile = Block.alloc ctx (Mem_kind.Ub 0) dt small_threshold in
      Vec.dup ctx ~dst:buf ~scalar:neg_infinity ~len:(2 * cap) ();
      let t = ref 0 in
      while !t < n do
        let len = min small_threshold (n - !t) in
        Mte.copy_in ctx ~engine:(Engine.Vec_mte_in 0) ~src:gt ~src_off:!t
          ~dst:tile ~len ();
        Vec.sort_region ctx ~descending:true ~src:tile ~dst:tile ~len ();
        Vec.copy ctx ~src:tile ~dst:buf ~dst_off:cap ~len:(min cap len) ();
        Vec.sort_region ctx ~descending:true ~src:buf ~dst:buf ~len:(2 * cap) ();
        t := !t + small_threshold
      done;
      Mte.copy_out ctx ~engine:(Engine.Vec_mte_out 0) ~src:buf ~dst:out
        ~dst_off:out_off ~len:need ()
    end
  in
  Launch.run ~name:"topk_finish" device ~blocks:1 body

let run ?(s = 128) ?(seed = 7) device x ~k =
  if not (Device.functional device) then
    invalid_arg "Topk.run: functional mode only";
  let n = Global_tensor.length x in
  if k <= 0 || k > n || k > 4096 then
    invalid_arg "Topk.run: k out of range (1 .. min n 4096)";
  if not (Dtype.equal (Global_tensor.dtype x) Dtype.F16) then
    invalid_arg "Topk.run: input must be f16";
  let rng = Random.State.make [| seed |] in
  let all_stats = ref [] in
  let note st = all_stats := st :: !all_stats in
  (* [kept] collects whole candidate groups already known to be in the
     answer; they are concatenated into [cand] and sorted at the end. *)
  let cand = Device.alloc device Dtype.F16 k ~name:"topk_cand" in
  let cand_off = ref 0 in
  let cur = ref x and need = ref k and rounds = ref 0 in
  let progress = ref true in
  while !need > 0 && Global_tensor.length !cur > small_threshold
        && !rounds < max_rounds && !progress do
    incr rounds;
    let m = Global_tensor.length !cur in
    let pivot = Global_tensor.get !cur (Random.State.int rng m) in
    (* flags = (cur >= pivot): at least one true (the pivot itself). *)
    let flags = Device.alloc device Dtype.I8 m ~name:"topk_flags" in
    let st_mask =
      Map_kernel.run ~name:"topk_mask" device ~inputs:[ !cur ] ~output:flags
        ~f:(fun ctx ~vec ~ins ~out ~scratch:_ ~len ->
          match ins with
          | [ src ] ->
              Vec.compare_scalar ctx ~vec Vec.Ge ~src ~dst:out ~scalar:pivot
                ~len ()
          | _ -> assert false)
    in
    note st_mask;
    let r = Split.run ~s device ~x:!cur ~flags () in
    note r.Split.stats;
    let cnt = r.Split.true_count in
    if cnt >= !need then
      if cnt = m then progress := false (* pivot is the minimum *)
      else begin
        let sub, st = Ops_util.slice device r.Split.values ~off:0 ~len:cnt in
        note st;
        cur := sub
      end
    else begin
      (* All [cnt] elements >= pivot belong to the answer. *)
      let sub, st = Ops_util.slice device r.Split.values ~off:0 ~len:cnt in
      note st;
      let st2 = finish_small device sub ~need:cnt ~out:cand ~out_off:!cand_off in
      note st2;
      cand_off := !cand_off + cnt;
      need := !need - cnt;
      let rest, st3 =
        Ops_util.slice device r.Split.values ~off:cnt ~len:(m - cnt)
      in
      note st3;
      cur := rest
    end
  done;
  if !need > 0 then begin
    let st = finish_small device !cur ~need:!need ~out:cand ~out_off:!cand_off in
    note st
  end;
  (* Final descending sort of the k candidates on one vector core. *)
  let out = Device.alloc device Dtype.F16 k ~name:(Global_tensor.name x ^ "_topk") in
  let st_final = finish_small device cand ~need:k ~out ~out_off:0 in
  note st_final;
  (out, Stats.combine ~name:"topk_split" (List.rev !all_stats))
