(** Compress / compact: the [torch.masked_select] equivalent.

    Returns the input elements whose int8 mask entry is non-zero, in
    order, using an exclusive MCScan on the mask followed by per-tile
    [GatherMask] writes (the true-only special case of {!Split}). *)

type result = {
  values : Ascend.Global_tensor.t;
      (** Full-length tensor whose first [count] entries are the
          compacted elements. *)
  count : int;  (** Number of selected elements (0 in cost-only mode). *)
  stats : Ascend.Stats.t;
}

val run :
  ?s:int ->
  ?expected_density:float ->
  Ascend.Device.t ->
  x:Ascend.Global_tensor.t ->
  mask:Ascend.Global_tensor.t ->
  unit ->
  result
(** [x] must be a 16-bit data type, [mask] an [I8] 0/1 tensor of the
    same length. Defaults: [s = 128], [expected_density = 0.5]. *)
