(** Generic multi-core element-wise pass over global tensors.

    Streams aligned UB tiles of every input through all vector cores of
    the device, applies a user-supplied sequence of vector instructions
    per tile, and writes one output tile back. Used for the radix mask
    extraction, the float encode/decode passes, and the top-p masking
    step. *)

val run :
  ?name:string ->
  ?scratch:Ascend.Dtype.t list ->
  Ascend.Device.t ->
  inputs:Ascend.Global_tensor.t list ->
  output:Ascend.Global_tensor.t ->
  f:
    (Ascend.Block.t ->
    vec:int ->
    ins:Ascend.Local_tensor.t list ->
    out:Ascend.Local_tensor.t ->
    scratch:Ascend.Local_tensor.t list ->
    len:int ->
    unit) ->
  Ascend.Stats.t
(** All inputs and the output must have the same length. [f] is called
    once per tile and must only issue {!Ascend.Vec} operations on the
    given vector core [vec]; the tile buffers ([ins], [out]) and the
    requested [scratch] tiles all hold [len] valid elements.
    [scratch] data types are given by the [scratch] argument. *)

val tile_elems : int
(** UB tile granularity used by the pass. *)
