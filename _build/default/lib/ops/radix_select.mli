(** Radix top-k selection (RadiK-style, Li et al. 2024 — cited by the
    paper as the scalable-k direction; an extension over its
    quickselect attempt).

    Scans the bits of the order-preserving-encoded fp16 keys from most
    to least significant. At each bit one stable {!Split} partitions
    the surviving candidates into the set-bit (larger) and clear-bit
    halves: if the larger half holds at least [k] candidates it becomes
    the new candidate set, otherwise it is emitted wholesale into the
    answer and the search continues for the remainder in the smaller
    half. The candidate set shrinks geometrically, so total traffic is
    about two passes over the input plus the per-round launch overhead
    — which is exactly why, like the paper's quickselect, it cannot
    beat the streaming vector-sort baseline at small [k], while scaling
    much better in [k]. *)

val run :
  ?s:int ->
  Ascend.Device.t ->
  Ascend.Global_tensor.t ->
  k:int ->
  Ascend.Global_tensor.t * Ascend.Stats.t
(** The [k] largest values ([F16]) in descending order. Functional
    device mode only (raises in cost-only); [k] in [1 .. min n 4096]. *)
