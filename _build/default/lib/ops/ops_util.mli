(** Shared helpers for the operator kernels. *)

val bitcast_f16_to_u16 :
  Ascend.Device.t -> Ascend.Global_tensor.t -> Ascend.Global_tensor.t
(** Reinterpret an [F16] tensor as its [U16] bit patterns. On hardware
    this is a zero-cost type pun on the same buffer; the simulator
    materialises a host-side view with no engine cost or traffic. *)

val bitcast_u16_to_f16 :
  Ascend.Device.t -> Ascend.Global_tensor.t -> Ascend.Global_tensor.t
(** Inverse reinterpretation. *)

val read_scalar : Ascend.Global_tensor.t -> int -> default:float -> float
(** Host-side readback of one element; returns [default] when the
    device runs cost-only (documenting the analytic substitution). *)

val slice :
  Ascend.Device.t ->
  Ascend.Global_tensor.t ->
  off:int ->
  len:int ->
  Ascend.Global_tensor.t * Ascend.Stats.t
(** Materialise [gt\[off, off+len)] as a fresh contiguous tensor with a
    multi-core streaming copy (a PyTorch [.contiguous()] slice). *)

val blit :
  Ascend.Device.t ->
  src:Ascend.Global_tensor.t ->
  ?src_off:int ->
  dst:Ascend.Global_tensor.t ->
  ?dst_off:int ->
  len:int ->
  unit ->
  Ascend.Stats.t
(** Streaming copy of [len] elements between regions of two global
    tensors (same data type), through the vector-core MTEs. *)
