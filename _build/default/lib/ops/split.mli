(** SplitInd: stable parallel split with output indices.

    Reorganises the input so that all elements whose flag is true come
    first (in their original order), followed by all elements whose
    flag is false (also in order). Optionally produces, for every
    output element, the index it came from — the feature that lets the
    radix sort satisfy the PyTorch [sort()] API.

    Implementation (Section 5): an {e exclusive} MCScan over the int8
    flag array yields, for every position, the number of preceding true
    elements; within each UB tile the vector cores then use
    [GatherMask] twice (once with the flags, once with their
    complement) and write the two compacted runs at the offsets the
    scan dictates — true run at [e(tile)], false run at
    [T + tile_offset - e(tile)] where [T] is the total true count.

    In cost-only device mode the gather counts are unknown; the kernel
    substitutes [expected_density] (documented analytic expectation)
    for traffic accounting. *)

type result = {
  values : Ascend.Global_tensor.t;  (** Same dtype/length as the input. *)
  indices : Ascend.Global_tensor.t option;
      (** [I32] source index per output element when requested. *)
  true_count : int;  (** Number of true flags (0 in cost-only mode). *)
  stats : Ascend.Stats.t;
}

val run :
  ?s:int ->
  ?expected_density:float ->
  ?with_indices:bool ->
  ?indices_in:Ascend.Global_tensor.t ->
  ?emit_falses:bool ->
  Ascend.Device.t ->
  x:Ascend.Global_tensor.t ->
  flags:Ascend.Global_tensor.t ->
  unit ->
  result
(** [x] must be a 16-bit data type ([F16], [I16] or [U16]); [flags]
    must be [I8] of the same length with 0/1 entries. [indices_in]
    (an [I32] tensor of source indices, for chaining radix passes)
    replaces the generated [arange] indices. [emit_falses:false]
    restricts the output to the true run (the compress special case).
    Defaults: [s = 128], [expected_density = 0.5],
    [with_indices = false], [emit_falses = true]. *)
