(** Top-k selection via partial quickselect over {!Split}.

    Repeatedly splits the candidate set on a pivot ([>= pivot] first);
    sides that belong entirely to the answer are set aside, and the
    side containing the k-th element is recursed on. Each round costs a
    full SplitInd pass (mask pass + exclusive MCScan + gather), so —
    exactly as the paper reports — the operator does {e not} beat the
    streaming vector-sort baseline for small [k] ([k <= 4096]); it is
    retained for completeness and as a SplitInd stress test.

    Functional device mode only (the recursion is data-dependent). *)

val run :
  ?s:int ->
  ?seed:int ->
  Ascend.Device.t ->
  Ascend.Global_tensor.t ->
  k:int ->
  Ascend.Global_tensor.t * Ascend.Stats.t
(** The [k] largest values ([F16]) in descending order. [seed] drives
    pivot selection. Raises [Invalid_argument] in cost-only mode or for
    [k] outside [1 .. min n 4096]. *)
