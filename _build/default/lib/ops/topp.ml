open Ascend

type result = { token : int option; kept : int; stats : Stats.t }

(* Steps (3)-(4) shared by both paths: mask the sorted tail whose
   preceding cumulative mass exceeds p, then draw a weighted sample
   from the surviving prefix. *)
let mask_and_sample ?(s = 128) device ~sorted ~cdf ~p ~theta =
  let n = Global_tensor.length sorted in
  let masked = Device.alloc device Dtype.F16 n ~name:"topp_masked" in
  (* keep_i = (cdf_i - q_i) <= p; masked_i = keep_i ? q_i : 0. *)
  let st_mask =
    Map_kernel.run ~name:"topp_mask" ~scratch:[ Dtype.F16; Dtype.I8 ] device
      ~inputs:[ cdf; sorted ] ~output:masked
      ~f:(fun ctx ~vec ~ins ~out ~scratch ~len ->
        match ins, scratch with
        | [ c; q ], [ t; keep ] ->
            Vec.binop ctx ~vec Vec.Sub ~src0:c ~src1:q ~dst:t ~len ();
            Vec.compare_scalar ctx ~vec Vec.Le ~src:t ~dst:keep ~scalar:p ~len ();
            Vec.dup ctx ~vec ~dst:t ~scalar:0.0 ~len ();
            Vec.select ctx ~vec ~mask:keep ~src0:q ~src1:t ~dst:out ~len ()
        | _, _ -> assert false)
  in
  let kept =
    if Device.functional device then begin
      let c = ref 0 in
      for i = 0 to n - 1 do
        if Global_tensor.get masked i <> 0.0 then incr c
      done;
      !c
    end
    else 0
  in
  let j, st_sample = Weighted_sampling.sample ~s device ~weights:masked ~theta in
  (j, kept, [ st_mask; st_sample ])

let sample ?(s = 128) device ~probs ~p ~theta =
  if p <= 0.0 || p > 1.0 then invalid_arg "Topp.sample: p out of (0, 1]";
  let r = Radix_sort.run ~s ~descending:true ~with_indices:true device probs in
  let sorted = r.Radix_sort.values in
  let cdf, st_scan = Scan.Mcscan.run ~s device sorted in
  let j, kept, sts = mask_and_sample ~s device ~sorted ~cdf ~p ~theta in
  let token =
    match r.Radix_sort.indices with
    | Some gi when Device.functional device ->
        Some (int_of_float (Global_tensor.get gi j))
    | Some _ | None -> None
  in
  {
    token;
    kept;
    stats =
      Stats.combine ~name:"topp_sample"
        (r.Radix_sort.stats :: st_scan :: sts);
  }

let sample_baseline device ~probs ~p ~theta =
  if p <= 0.0 || p > 1.0 then
    invalid_arg "Topp.sample_baseline: p out of (0, 1]";
  let sorted, st_sort = Baseline.sort ~descending:true device probs in
  let cdf, st_scan = Baseline.cumsum device sorted in
  let j, kept, sts = mask_and_sample device ~sorted ~cdf ~p ~theta in
  ignore j;
  {
    token = None;
    kept;
    stats = Stats.combine ~name:"topp_baseline" (st_sort :: st_scan :: sts);
  }

let sample_batch ?(s = 128) device ~probs ~batch ~len ~p ~thetas =
  if batch <= 0 || len <= 0 then
    invalid_arg "Topp.sample_batch: batch and len must be positive";
  if Global_tensor.length probs < batch * len then
    invalid_arg "Topp.sample_batch: tensor shorter than batch * len";
  if Array.length thetas <> batch then
    invalid_arg "Topp.sample_batch: one theta per row required";
  Array.init batch (fun row ->
      let slice, st_slice =
        Ops_util.slice device probs ~off:(row * len) ~len
      in
      let r = sample ~s device ~probs:slice ~p ~theta:thetas.(row) in
      { r with stats = Stats.combine ~name:"topp_row" [ st_slice; r.stats ] })
