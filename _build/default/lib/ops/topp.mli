(** Top-p (nucleus) sampling — the Llama3 [sample_top_p] pipeline.

    Given a probability vector, (1) sort it in descending order,
    (2) compute the cumulative sum of the sorted probabilities,
    (3) zero out every token whose {e preceding} cumulative mass
    already exceeds [p], and (4) draw one weighted sample from the
    surviving (renormalised-by-construction) prefix, mapping it back to
    the original token id through the sort indices.

    With the sort implemented as a radix sort, the operator executes
    17 scans per call — 16 inside the radix sort (one per fp16 bit)
    plus the explicit cumulative sum — which is what makes the cube
    scans pay off end to end (Figure 13).

    {!sample_baseline} runs the same pipeline on the stock operators
    (bitonic [torch.sort] + vector-only [torch.cumsum]); it returns no
    token id because the stock sort path is modelled values-only. *)

type result = {
  token : int option;  (** Sampled original token id. *)
  kept : int;  (** Nucleus size (0 in cost-only mode). *)
  stats : Ascend.Stats.t;
}

val sample :
  ?s:int ->
  Ascend.Device.t ->
  probs:Ascend.Global_tensor.t ->
  p:float ->
  theta:float ->
  result
(** [probs] must be [F16], non-negative; [p] in (0, 1]; [theta] in
    [0, 1) is the uniform draw. Default [s = 128]. *)

val sample_batch :
  ?s:int ->
  Ascend.Device.t ->
  probs:Ascend.Global_tensor.t ->
  batch:int ->
  len:int ->
  p:float ->
  thetas:float array ->
  result array
(** Top-p over a row-major [(batch, len)] probability tensor with one
    uniform draw per row — the constant-batch LLM serving shape the
    paper's Section 5 describes. Each row is sliced contiguous and runs
    the full pipeline; the per-row stats are in each result. *)

val sample_baseline :
  Ascend.Device.t ->
  probs:Ascend.Global_tensor.t ->
  p:float ->
  theta:float ->
  result
(** Same pipeline over [torch.sort] + [torch.cumsum]; input length must
    be a power of two (bitonic baseline). [token] is [None]. *)
