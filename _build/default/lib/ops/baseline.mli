(** Models of the stock PyTorch-on-Ascend operators the paper compares
    against. Each follows the engine usage the paper reports or that a
    generic (non-cube-aware) port would exhibit:

    - {!clone} is a pure streaming copy through all vector-core MTEs —
      the memory-bandwidth yardstick of Figure 8;
    - {!cumsum} is the vector-only CumSum kernel ({!Scan.Scan_vec_only});
    - {!masked_select} uses only the scalar unit (the paper's code
      investigation found the stock operator uses neither the vector
      nor the cube units);
    - {!sort} is a naive global bitonic network on the vector cores:
      every compare-exchange stage is a full read-modify-write pass
      over global memory with a barrier between stages (no UB fusion
      across stages) — values only;
    - {!topk} streams tiles through the vector-sort instructions,
      merging each tile's candidates into a running top-k buffer; it is
      hard to beat for small [k] (the paper's negative result);
    - {!multinomial} draws one weighted sample with a single-core
      cumulative sum and scalar binary search, and rejects support
      sizes above [2^24] like the stock operator. *)

val clone :
  Ascend.Device.t ->
  Ascend.Global_tensor.t ->
  Ascend.Global_tensor.t * Ascend.Stats.t

val cumsum :
  Ascend.Device.t ->
  Ascend.Global_tensor.t ->
  Ascend.Global_tensor.t * Ascend.Stats.t

val masked_select :
  Ascend.Device.t ->
  x:Ascend.Global_tensor.t ->
  mask:Ascend.Global_tensor.t ->
  Ascend.Global_tensor.t * int * Ascend.Stats.t
(** Returns (values, count, stats); the first [count] entries of
    [values] are the selected elements. *)

val sort :
  ?descending:bool ->
  Ascend.Device.t ->
  Ascend.Global_tensor.t ->
  Ascend.Global_tensor.t * Ascend.Stats.t
(** Input length must be a power of two ([F16] data); ascending by
    default. *)

val topk :
  Ascend.Device.t ->
  Ascend.Global_tensor.t ->
  k:int ->
  Ascend.Global_tensor.t * Ascend.Stats.t
(** The [k] largest values in descending order ([k <= 4096]). Values
    only (functional mode only). *)

val multinomial :
  Ascend.Device.t ->
  weights:Ascend.Global_tensor.t ->
  theta:float ->
  int * Ascend.Stats.t
(** Inverse-transform sample from unnormalised weights using the
    uniform draw [theta] in [0, 1). Raises [Invalid_argument] when the
    support exceeds [2^24] (the stock operator's limit). *)

val max_multinomial_support : int
