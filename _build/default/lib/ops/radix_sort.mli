(** LSB radix sort of fp16 (or raw u16) keys built on {!Split}.

    The sort loops over the 16 bits of the keys from least to most
    significant; each iteration extracts the current bit with vector
    shift/and instructions (the RadixSingle pre-pass) and performs one
    stable {!Split} whose parallel splits run on the cube units through
    the int8 exclusive MCScan. Sixteen stable bit-splits yield a fully
    sorted, stable result.

    fp16 keys are supported through the order-preserving encoding of
    {!Float_codec} applied in a pre-processing pass and undone in a
    post-processing pass; NaN payloads order after +inf. Pass
    [with_indices] to additionally return each output element's input
    index (the PyTorch [sort()] API). *)

type result = {
  values : Ascend.Global_tensor.t;  (** Sorted values (input dtype). *)
  indices : Ascend.Global_tensor.t option;  (** [I32] source indices. *)
  stats : Ascend.Stats.t;  (** Combined over all passes. *)
}

val run :
  ?s:int ->
  ?with_indices:bool ->
  ?descending:bool ->
  ?bits:int ->
  Ascend.Device.t ->
  Ascend.Global_tensor.t ->
  result
(** Input must be [F16] or [U16]. [bits] (default 16) limits the
    number of radix passes — low-precision keys sort proportionally
    faster, the low-bit-width scenario of Section 6.3. For [U16]
    inputs, [bits < 16] requires the keys to actually fit in [bits]
    bits for a correct result. Defaults: [s = 128],
    [with_indices = false], [descending = false]. *)
