type result = {
  values : Ascend.Global_tensor.t;
  count : int;
  stats : Ascend.Stats.t;
}

let run ?s ?expected_density device ~x ~mask () =
  let r =
    Split.run ?s ?expected_density ~emit_falses:false device ~x ~flags:mask ()
  in
  {
    values = r.Split.values;
    count = r.Split.true_count;
    stats = Ascend.Stats.combine ~name:"compress" [ r.Split.stats ];
  }
