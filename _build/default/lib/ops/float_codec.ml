open Ascend

let encode_bits u =
  let u = u land 0xFFFF in
  if u land 0x8000 <> 0 then u lxor 0xFFFF else u lxor 0x8000

let decode_bits e =
  let e = e land 0xFFFF in
  if e land 0x8000 <> 0 then e lxor 0x8000 else e lxor 0xFFFF

(* dst = src xor (sign_mask) where sign_mask is 0x8000 for positives and
   0xFFFF for negatives: mask = ((src >> 15) * 0x7FFF) | 0x8000. *)
let encode_tile ctx ?(vec = 0) ~src ~dst ~tmp ~len () =
  Vec.shift_right ctx ~vec ~src ~dst:tmp ~bits:15 ~len ();
  Vec.muls ctx ~vec ~src:tmp ~dst:tmp ~scalar:32767.0 ~len ();
  Vec.bit_ors ctx ~vec ~src:tmp ~dst:tmp ~mask:0x8000 ~len ();
  Vec.bit_op ctx ~vec Vec.Xor ~src0:src ~src1:tmp ~dst ~len ()

(* Inverse: encoded MSB 1 came from a positive (xor 0x8000 back),
   MSB 0 from a negative (xor 0xFFFF):
   mask = (((src >> 15) xor 1) * 0x7FFF) | 0x8000. *)
let decode_tile ctx ?(vec = 0) ~src ~dst ~tmp ~len () =
  Vec.shift_right ctx ~vec ~src ~dst:tmp ~bits:15 ~len ();
  Vec.bit_xors ctx ~vec ~src:tmp ~dst:tmp ~mask:1 ~len ();
  Vec.muls ctx ~vec ~src:tmp ~dst:tmp ~scalar:32767.0 ~len ();
  Vec.bit_ors ctx ~vec ~src:tmp ~dst:tmp ~mask:0x8000 ~len ();
  Vec.bit_op ctx ~vec Vec.Xor ~src0:src ~src1:tmp ~dst ~len ()
