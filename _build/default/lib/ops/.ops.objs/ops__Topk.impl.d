lib/ops/topk.ml: Ascend Block Device Dtype Engine Global_tensor Launch List Map_kernel Mem_kind Mte Ops_util Random Split Stats Vec
