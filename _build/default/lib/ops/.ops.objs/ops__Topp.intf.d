lib/ops/topp.mli: Ascend
