lib/ops/topp.ml: Array Ascend Baseline Device Dtype Global_tensor Map_kernel Ops_util Radix_sort Scan Stats Vec Weighted_sampling
