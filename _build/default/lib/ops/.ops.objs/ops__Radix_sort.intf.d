lib/ops/radix_sort.mli: Ascend
