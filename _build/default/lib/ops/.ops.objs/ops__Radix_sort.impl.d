lib/ops/radix_sort.ml: Ascend Device Dtype Float_codec Global_tensor List Map_kernel Ops_util Printf Split Stats Vec
