lib/ops/map_kernel.mli: Ascend
