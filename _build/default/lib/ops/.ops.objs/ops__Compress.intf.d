lib/ops/compress.mli: Ascend
