lib/ops/split.mli: Ascend
