lib/ops/weighted_sampling.mli: Ascend
