lib/ops/baseline.ml: Array Ascend Block Cost_model Device Dtype Engine Float Global_tensor Launch List Local_tensor Map_kernel Mem_kind Mte Printf Scalar_unit Scan Stats Vec
