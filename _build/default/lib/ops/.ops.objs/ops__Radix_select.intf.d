lib/ops/radix_select.mli: Ascend
