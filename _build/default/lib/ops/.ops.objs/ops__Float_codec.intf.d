lib/ops/float_codec.mli: Ascend
