lib/ops/compress.ml: Ascend Split
