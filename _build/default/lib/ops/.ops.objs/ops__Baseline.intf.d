lib/ops/baseline.mli: Ascend
