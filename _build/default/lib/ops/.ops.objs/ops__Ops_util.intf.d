lib/ops/ops_util.mli: Ascend
