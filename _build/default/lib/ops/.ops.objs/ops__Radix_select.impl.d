lib/ops/radix_select.ml: Ascend Block Device Dtype Engine Float_codec Global_tensor Launch List Map_kernel Mem_kind Mte Ops_util Printf Split Stats Vec
