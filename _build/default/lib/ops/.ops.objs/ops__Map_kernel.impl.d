lib/ops/map_kernel.ml: Array Ascend Block Cost_model Device Engine Global_tensor Launch List Mem_kind Mte Scan
