lib/ops/weighted_sampling.ml: Array Ascend Block Device Dtype Engine Float Fun Global_tensor Launch Map_kernel Mem_kind Mte Ops_util Scan Split Stats Vec
