lib/ops/ops_util.ml: Array Ascend Block Cost_model Device Dtype Engine Fp16 Global_tensor Launch Mem_kind Mte Scan
