lib/ops/float_codec.ml: Ascend Vec
