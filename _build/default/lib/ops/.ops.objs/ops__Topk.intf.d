lib/ops/topk.mli: Ascend
