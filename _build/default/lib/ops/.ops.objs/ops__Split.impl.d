lib/ops/split.ml: Array Ascend Block Cost_model Device Dtype Engine Global_tensor Launch Local_tensor Mem_kind Mte Printf Scan Stats Vec
