(** Order-preserving encoding of fp16 bit patterns for radix sorting.

    An unsigned integer radix sort orders fp16 values correctly after
    encoding each 16-bit pattern as follows (Knuth, TAOCP vol. 3,
    exercises 5.2.5-8/9; also the CM-2 sorting paper):

    - positive numbers (sign bit 0): invert the most significant bit;
    - negative numbers (sign bit 1): invert all 16 bits.

    Decoding is the inverse: patterns with MSB 1 came from positives
    (invert the MSB back); patterns with MSB 0 came from negatives
    (invert everything). The encoding orders [-inf < ... < -0 < +0 <
    ... < +inf < NaN(+)], with negative-payload NaNs first. *)

val encode_bits : int -> int
(** Host-side encode of one 16-bit pattern. *)

val decode_bits : int -> int
(** Host-side decode; [decode_bits (encode_bits u) = u]. *)

val encode_tile :
  Ascend.Block.t ->
  ?vec:int ->
  src:Ascend.Local_tensor.t ->
  dst:Ascend.Local_tensor.t ->
  tmp:Ascend.Local_tensor.t ->
  len:int ->
  unit ->
  unit
(** Vector-engine encode of a UB tile of [U16] key patterns:
    [dst = src xor ((src >> 15) * 0x7FFF or 0x8000)], built from the
    shift / multiply / or / xor vector instructions. [tmp] is a [U16]
    scratch tile of at least [len] elements. *)

val decode_tile :
  Ascend.Block.t ->
  ?vec:int ->
  src:Ascend.Local_tensor.t ->
  dst:Ascend.Local_tensor.t ->
  tmp:Ascend.Local_tensor.t ->
  len:int ->
  unit ->
  unit
(** Vector-engine inverse of {!encode_tile}. *)
