(** Scalar-unit operations.

    The scalar unit handles program flow and address computation; it can
    also touch global memory one element at a time, which is how the
    unoptimised baseline operators on Ascend behave (the paper observes
    that [torch.masked_select] uses neither the vector nor the cube
    units). Element-granular GM access is two orders of magnitude slower
    than MTE streaming. *)

val ops : Block.t -> count:int -> unit
(** Charge [count] scalar ALU operations. *)

val gm_read : Block.t -> Global_tensor.t -> int -> float
(** Read one element of global memory through the scalar unit. *)

val gm_write : Block.t -> Global_tensor.t -> int -> float -> unit
(** Write one element of global memory through the scalar unit. *)
