(** Cube (AIC) engine operations.

    The cube engine multiplies an [m x k] left operand in L0A by a
    [k x n] right operand in L0B into an [m x n] accumulator in L0C,
    optionally accumulating with the existing L0C contents (AscendC
    [Mmad]). Supported data-type combinations follow the hardware:
    fp16 x fp16 -> fp32 and int8 x int8 -> int32.

    Operands are stored row-major from offset 0 of their tensors.

    The int8 path runs at twice the MAC rate of fp16 (see
    {!Cost_model.t.cube_macs_per_cycle_i8}). *)

val mmad :
  Block.t ->
  a:Local_tensor.t ->
  b:Local_tensor.t ->
  c:Local_tensor.t ->
  m:int ->
  k:int ->
  n:int ->
  accumulate:bool ->
  unit
(** Raises [Invalid_argument] when an operand is in the wrong buffer,
    too short for its shape, or the data types are unsupported. *)
