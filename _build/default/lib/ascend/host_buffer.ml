type t = { dtype : Dtype.t; data : float array }

let create dtype n =
  if n < 0 then invalid_arg "Host_buffer.create: negative length";
  { dtype; data = Array.make n 0.0 }

let dtype t = t.dtype
let length t = Array.length t.data
let size_bytes t = length t * Dtype.size_bytes t.dtype
let get t i = t.data.(i)
let set t i v = t.data.(i) <- Dtype.round t.dtype v
let set_cast t i ~from v = t.data.(i) <- Dtype.cast ~from ~into:t.dtype v

let fill t v =
  let v = Dtype.round t.dtype v in
  Array.fill t.data 0 (Array.length t.data) v

let blit ~src ~src_off ~dst ~dst_off ~len =
  if len < 0 || src_off < 0 || dst_off < 0
     || src_off + len > length src || dst_off + len > length dst
  then invalid_arg "Host_buffer.blit: range out of bounds";
  if Dtype.equal src.dtype dst.dtype then
    Array.blit src.data src_off dst.data dst_off len
  else
    for i = 0 to len - 1 do
      set_cast dst (dst_off + i) ~from:src.dtype src.data.(src_off + i)
    done

let of_array dtype a =
  let t = create dtype (Array.length a) in
  Array.iteri (fun i v -> set t i v) a;
  t

let to_array t = Array.copy t.data
let copy t = { dtype = t.dtype; data = Array.copy t.data }

let pp fmt t =
  let n = length t in
  let shown = min n 8 in
  Format.fprintf fmt "@[<h>%a[%d] = [" Dtype.pp t.dtype n;
  for i = 0 to shown - 1 do
    if i > 0 then Format.pp_print_string fmt "; ";
    Format.fprintf fmt "%g" t.data.(i)
  done;
  if shown < n then Format.pp_print_string fmt "; ...";
  Format.pp_print_string fmt "]@]"
