let gm_bytes gt len = len * Dtype.size_bytes (Global_tensor.dtype gt)
let local_bytes lt len = len * Dtype.size_bytes (Local_tensor.dtype lt)

let check what ~len ~src_off ~dst_off ~src_len ~dst_len =
  if len < 0 || src_off < 0 || dst_off < 0 || src_off + len > src_len
     || dst_off + len > dst_len
  then
    invalid_arg
      (Printf.sprintf "Mte.%s: range out of bounds (len %d, src %d+/%d, dst %d+/%d)"
         what len src_off src_len dst_off dst_len)

let copy_in ctx ~engine ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~len () =
  Block.count_op ctx "datacopy_in";
  check "copy_in" ~len ~src_off ~dst_off
    ~src_len:(Global_tensor.length src) ~dst_len:(Local_tensor.length dst);
  let bytes = gm_bytes src len in
  Block.charge ctx engine (Cost_model.mte_copy_cycles (Block.cost ctx) ~bytes);
  Block.note_gm_traffic ctx ~read:bytes ~write:0;
  Block.note_touched ctx src;
  if Block.functional ctx then begin
    Local_tensor.touch dst;
    Host_buffer.blit ~src:(Global_tensor.buffer src) ~src_off
      ~dst:(Local_tensor.buffer dst) ~dst_off ~len
  end

let copy_in_strided ctx ~engine ~src ~src_off ~src_stride ~dst ~dst_off
    ~dst_stride ~burst ~count =
  Block.count_op ctx "datacopy_in";
  if burst < 0 || count < 0 then
    invalid_arg "Mte.copy_in_strided: negative burst or count";
  let len = burst * count in
  let bytes = gm_bytes src len in
  Block.charge ctx engine (Cost_model.mte_copy_cycles (Block.cost ctx) ~bytes);
  Block.note_gm_traffic ctx ~read:bytes ~write:0;
  Block.note_touched ctx src;
  if Block.functional ctx then begin
    Local_tensor.touch dst;
    for c = 0 to count - 1 do
      Host_buffer.blit ~src:(Global_tensor.buffer src)
        ~src_off:(src_off + (c * src_stride))
        ~dst:(Local_tensor.buffer dst)
        ~dst_off:(dst_off + (c * dst_stride))
        ~len:burst
    done
  end

let copy_out ctx ~engine ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~len () =
  Block.count_op ctx "datacopy_out";
  check "copy_out" ~len ~src_off ~dst_off
    ~src_len:(Local_tensor.length src) ~dst_len:(Global_tensor.length dst);
  let bytes = gm_bytes dst len in
  Block.charge ctx engine (Cost_model.mte_copy_cycles (Block.cost ctx) ~bytes);
  Block.note_gm_traffic ctx ~read:0 ~write:bytes;
  Block.note_touched ctx dst;
  if Block.functional ctx then
    Host_buffer.blit ~src:(Local_tensor.buffer src) ~src_off
      ~dst:(Global_tensor.buffer dst) ~dst_off ~len

let copy_out_strided ctx ~engine ~src ~src_off ~src_stride ~dst ~dst_off
    ~dst_stride ~burst ~count =
  Block.count_op ctx "datacopy_out";
  if burst < 0 || count < 0 then
    invalid_arg "Mte.copy_out_strided: negative burst or count";
  let len = burst * count in
  let bytes = gm_bytes dst len in
  Block.charge ctx engine (Cost_model.mte_copy_cycles (Block.cost ctx) ~bytes);
  Block.note_gm_traffic ctx ~read:0 ~write:bytes;
  Block.note_touched ctx dst;
  if Block.functional ctx then
    for c = 0 to count - 1 do
      Host_buffer.blit ~src:(Local_tensor.buffer src)
        ~src_off:(src_off + (c * src_stride))
        ~dst:(Global_tensor.buffer dst)
        ~dst_off:(dst_off + (c * dst_stride))
        ~len:burst
    done

let copy_local ctx ~engine ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~len () =
  Block.count_op ctx "datacopy_local";
  check "copy_local" ~len ~src_off ~dst_off
    ~src_len:(Local_tensor.length src) ~dst_len:(Local_tensor.length dst);
  let bytes = max (local_bytes src len) (local_bytes dst len) in
  Block.charge ctx engine (Cost_model.local_copy_cycles (Block.cost ctx) ~bytes);
  if Block.functional ctx then begin
    let whole =
      src_off = 0 && dst_off = 0
      && len = Local_tensor.length src
      && len = Local_tensor.length dst
    in
    let src_structure = Local_tensor.structure src in
    Local_tensor.touch dst;
    Host_buffer.blit ~src:(Local_tensor.buffer src) ~src_off
      ~dst:(Local_tensor.buffer dst) ~dst_off ~len;
    if whole then Local_tensor.set_structure dst src_structure
  end
