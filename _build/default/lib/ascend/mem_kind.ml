type t = Ub of int | L1 | L0a | L0b | L0c

let kib n = n * 1024

let capacity_bytes = function
  | Ub _ -> kib 192
  | L1 -> kib 1024
  | L0a -> kib 64
  | L0b -> kib 64
  | L0c -> kib 256

let owner ~vec_per_core kind =
  match kind with
  | Ub i ->
      if i < 0 || i >= vec_per_core then
        invalid_arg "Mem_kind.owner: vector core index out of range";
      Engine.Vec i
  | L1 | L0a | L0b | L0c -> Engine.Cube

let equal a b =
  match a, b with
  | Ub i, Ub j -> i = j
  | L1, L1 | L0a, L0a | L0b, L0b | L0c, L0c -> true
  | (Ub _ | L1 | L0a | L0b | L0c), _ -> false

let to_string = function
  | Ub i -> Printf.sprintf "UB%d" i
  | L1 -> "L1"
  | L0a -> "L0A"
  | L0b -> "L0B"
  | L0c -> "L0C"

let pp fmt k = Format.pp_print_string fmt (to_string k)
