type t = {
  clock_hz : float;
  num_ai_cores : int;
  vec_per_core : int;
  hbm_bandwidth : float;
  l2_bandwidth : float;
  l2_capacity_bytes : int;
  mte_stream_bandwidth : float;
  local_stream_bandwidth : float;
  mte_issue_cycles : float;
  vec_bytes_per_cycle : float;
  vec_issue_cycles : float;
  scalar_access_cycles : float;
  scalar_op_cycles : float;
  scalar_gm_cycles_per_access : float;
  cube_macs_per_cycle_f16 : float;
  cube_macs_per_cycle_i8 : float;
  mmad_issue_cycles : float;
  cumsum_instrs_per_row : float;
  sync_all_seconds : float;
  kernel_launch_seconds : float;
}

(* Calibration: datasheet-level constants (clock, core counts, HBM and
   datapath widths) come from the 910B4 description in the paper's §3
   and §6; the overhead constants (issue costs, barrier and launch
   latency, CumSum instruction density) were fitted once to the anchor
   points of Figures 3 and 8 and then frozen (DESIGN.md §4). *)
let default =
  {
    clock_hz = 1.8e9;
    num_ai_cores = 20;
    vec_per_core = 2;
    hbm_bandwidth = 800.0e9;
    l2_bandwidth = 0.85e12;
    l2_capacity_bytes = 192 * 1024 * 1024;
    mte_stream_bandwidth = 120.0e9;
    local_stream_bandwidth = 200.0e9;
    mte_issue_cycles = 16.0;
    vec_bytes_per_cycle = 256.0;
    vec_issue_cycles = 24.0;
    scalar_access_cycles = 28.0;
    scalar_op_cycles = 3.0;
    scalar_gm_cycles_per_access = 90.0;
    cube_macs_per_cycle_f16 = 4096.0;
    cube_macs_per_cycle_i8 = 8192.0;
    mmad_issue_cycles = 40.0;
    cumsum_instrs_per_row = 10.5;
    sync_all_seconds = 3.0e-6;
    kernel_launch_seconds = 8.0e-6;
  }

let cycles_to_seconds t c = c /. t.clock_hz
let seconds_to_cycles t s = s *. t.clock_hz

let vec_op_cycles t ~bytes =
  t.vec_issue_cycles +. (float_of_int bytes /. t.vec_bytes_per_cycle)

let mte_copy_cycles t ~bytes =
  t.mte_issue_cycles
  +. (float_of_int bytes *. t.clock_hz /. t.mte_stream_bandwidth)

let local_copy_cycles t ~bytes =
  t.mte_issue_cycles
  +. (float_of_int bytes *. t.clock_hz /. t.local_stream_bandwidth)

let mmad_cycles t ~m ~k ~n ~int8 =
  let rate = if int8 then t.cube_macs_per_cycle_i8 else t.cube_macs_per_cycle_f16 in
  t.mmad_issue_cycles +. (float_of_int (m * k * n) /. rate)

let pp fmt t =
  Format.fprintf fmt
    "@[<v>cost model:@ clock %.2f GHz, %d AI cores (x%d vec)@ HBM %.0f GB/s, \
     L2 %.0f GB/s / %d MiB@ MTE %.0f GB/s/stream (+%.0f cyc)@ vec %.0f B/cyc \
     (+%.0f cyc)@ cube %.0f/%.0f MAC/cyc (+%.0f cyc)@ sync %.1f us, launch \
     %.1f us@]"
    (t.clock_hz /. 1e9) t.num_ai_cores t.vec_per_core
    (t.hbm_bandwidth /. 1e9) (t.l2_bandwidth /. 1e9)
    (t.l2_capacity_bytes / 1024 / 1024)
    (t.mte_stream_bandwidth /. 1e9)
    t.mte_issue_cycles t.vec_bytes_per_cycle t.vec_issue_cycles
    t.cube_macs_per_cycle_f16 t.cube_macs_per_cycle_i8 t.mmad_issue_cycles
    (t.sync_all_seconds *. 1e6)
    (t.kernel_launch_seconds *. 1e6)
