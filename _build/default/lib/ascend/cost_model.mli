(** Performance model of an Ascend 910B4-class accelerator.

    All compute costs are expressed in core clock cycles; all memory
    throughputs in bytes per second. {!default} is calibrated once
    against the anchor points published in the paper (see DESIGN.md §4)
    and shared by every benchmark; the ablation benches construct
    variants with {!with_} style record updates. *)

type t = {
  clock_hz : float;  (** Core clock of AIC/AIV cores (1.8 GHz). *)
  num_ai_cores : int;  (** AI cores; each has 1 cube + 2 vector cores (20). *)
  vec_per_core : int;  (** Vector cores per AI core (2 on 910B). *)
  hbm_bandwidth : float;  (** Aggregate HBM bandwidth, bytes/s (800e9). *)
  l2_bandwidth : float;  (** Aggregate bandwidth when the working set is L2-resident. *)
  l2_capacity_bytes : int;  (** L2 cache capacity. *)
  mte_stream_bandwidth : float;
      (** Peak bandwidth of one MTE transfer queue (single-core ceiling). *)
  local_stream_bandwidth : float;
      (** Bandwidth of on-chip moves (L1 <-> L0x, L0C -> L1) that never
          touch global memory. *)
  mte_issue_cycles : float;  (** Fixed cost to issue one DataCopy. *)
  vec_bytes_per_cycle : float;
      (** Vector engine datapath width (256 B = 128 fp16 lanes). *)
  vec_issue_cycles : float;  (** Fixed cost to issue one vector instruction. *)
  scalar_access_cycles : float;
      (** Cost of moving one element between UB and a scalar register;
          serialises the issuing engine's pipeline. *)
  scalar_op_cycles : float;  (** One scalar-unit arithmetic operation. *)
  scalar_gm_cycles_per_access : float;
      (** Latency of one element-granular global-memory access from the
          scalar unit; dominates unvectorised baseline operators. *)
  cube_macs_per_cycle_f16 : float;
      (** fp16 multiply-accumulates per cycle (16x16x16 = 4096). *)
  cube_macs_per_cycle_i8 : float;  (** int8 MACs per cycle (double rate). *)
  mmad_issue_cycles : float;  (** Fixed cost to start one Mmad. *)
  cumsum_instrs_per_row : float;
      (** Vector instructions the CumSum AscendC API spends per matrix
          row of its (128,128) tile, including the log-step intra-row
          adds and the inter-row propagation. *)
  sync_all_seconds : float;  (** Latency of a SyncAll global barrier. *)
  kernel_launch_seconds : float;
      (** Host-side launch latency of one kernel (one Launch.run). *)
}

val default : t
(** 910B4 calibration used by all experiments. *)

val cycles_to_seconds : t -> float -> float
val seconds_to_cycles : t -> float -> float

val vec_op_cycles : t -> bytes:int -> float
(** Cost of one vector instruction processing [bytes] of data. *)

val mte_copy_cycles : t -> bytes:int -> float
(** Cost of one DataCopy of [bytes] through a single MTE queue. *)

val local_copy_cycles : t -> bytes:int -> float
(** Cost of one on-chip DataCopy of [bytes] (L1/L0 paths). *)

val mmad_cycles : t -> m:int -> k:int -> n:int -> int8:bool -> float
(** Cost of one [m*k @ k*n] matrix multiply-accumulate. *)

val pp : Format.formatter -> t -> unit
