lib/ascend/mte.mli: Block Engine Global_tensor Local_tensor
