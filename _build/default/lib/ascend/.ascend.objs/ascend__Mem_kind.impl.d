lib/ascend/mem_kind.ml: Engine Format Printf
