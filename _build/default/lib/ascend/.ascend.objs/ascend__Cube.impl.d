lib/ascend/cube.ml: Array Block Cost_model Dtype Engine Host_buffer Local_tensor Mem_kind Printf
