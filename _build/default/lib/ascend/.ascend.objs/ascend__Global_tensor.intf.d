lib/ascend/global_tensor.mli: Dtype Format Host_buffer
