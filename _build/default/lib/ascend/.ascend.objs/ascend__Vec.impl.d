lib/ascend/vec.ml: Array Block Cost_model Dtype Engine Float Fun Host_buffer Local_tensor Mem_kind Printf Stdlib
