lib/ascend/dtype.ml: Float Format Fp16 Int32
