lib/ascend/stats.mli: Format
