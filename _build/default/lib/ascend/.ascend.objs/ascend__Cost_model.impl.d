lib/ascend/cost_model.ml: Format
