lib/ascend/host_buffer.mli: Dtype Format
