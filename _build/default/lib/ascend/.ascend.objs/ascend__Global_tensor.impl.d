lib/ascend/global_tensor.ml: Array Dtype Format Host_buffer Option Printf
