lib/ascend/cost_model.mli: Format
