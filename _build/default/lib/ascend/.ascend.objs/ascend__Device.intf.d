lib/ascend/device.mli: Cost_model Dtype Format Global_tensor
