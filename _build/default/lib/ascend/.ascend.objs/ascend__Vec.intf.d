lib/ascend/vec.mli: Block Local_tensor
