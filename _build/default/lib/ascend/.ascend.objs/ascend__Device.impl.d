lib/ascend/device.ml: Array Cost_model Dtype Format Global_tensor
