lib/ascend/mem_kind.mli: Engine Format
