lib/ascend/fp16.ml: Float Format Int Int32
