lib/ascend/dtype.mli: Format
