lib/ascend/block.ml: Array Cost_model Device Dtype Engine Float Global_tensor Hashtbl List Local_tensor Mem_kind Option Printf
