lib/ascend/cube.mli: Block Local_tensor
