lib/ascend/stats.ml: Format Hashtbl List Option
