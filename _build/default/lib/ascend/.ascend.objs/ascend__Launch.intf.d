lib/ascend/launch.mli: Block Device Stats
