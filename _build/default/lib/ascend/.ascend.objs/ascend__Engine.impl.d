lib/ascend/engine.ml: Format Fun List Printf
