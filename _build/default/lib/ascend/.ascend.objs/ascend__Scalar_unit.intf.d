lib/ascend/scalar_unit.mli: Block Global_tensor
