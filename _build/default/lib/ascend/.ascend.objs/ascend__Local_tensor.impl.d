lib/ascend/local_tensor.ml: Dtype Format Host_buffer Mem_kind
