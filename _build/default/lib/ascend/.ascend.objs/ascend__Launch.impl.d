lib/ascend/launch.ml: Array Block Cost_model Device Engine Float Hashtbl List Option Stats
