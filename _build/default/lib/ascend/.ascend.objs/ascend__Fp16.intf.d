lib/ascend/fp16.mli: Format
