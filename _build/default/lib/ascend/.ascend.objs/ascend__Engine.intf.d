lib/ascend/engine.mli: Format
