lib/ascend/block.mli: Cost_model Device Dtype Engine Global_tensor Local_tensor Mem_kind
