lib/ascend/scalar_unit.ml: Block Cost_model Dtype Engine Global_tensor
