lib/ascend/local_tensor.mli: Dtype Format Host_buffer Mem_kind
