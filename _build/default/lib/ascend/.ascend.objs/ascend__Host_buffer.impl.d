lib/ascend/host_buffer.ml: Array Dtype Format
