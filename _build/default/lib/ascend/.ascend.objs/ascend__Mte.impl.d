lib/ascend/mte.ml: Block Cost_model Dtype Global_tensor Host_buffer Local_tensor Printf
