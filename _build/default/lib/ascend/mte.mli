(** Memory Transfer Engine operations (AscendC [DataCopy]).

    MTEs move data between global memory and local scratchpads (and
    between scratchpads). Global transfers are charged to the given MTE
    queue at the single-stream bandwidth and counted toward the
    launch-level HBM/L2 bandwidth cap; purely on-chip transfers use the
    faster local path.

    When source and destination data types differ, the copy applies the
    hardware cast (e.g. the L0C fp32 -> GM fp16 quantizing output path,
    or int32 -> int16 narrowing). Traffic is counted on the GM side. *)

val copy_in :
  Block.t ->
  engine:Engine.t ->
  src:Global_tensor.t ->
  ?src_off:int ->
  dst:Local_tensor.t ->
  ?dst_off:int ->
  len:int ->
  unit ->
  unit
(** Copy [len] elements GM -> local. *)

val copy_in_strided :
  Block.t ->
  engine:Engine.t ->
  src:Global_tensor.t ->
  src_off:int ->
  src_stride:int ->
  dst:Local_tensor.t ->
  dst_off:int ->
  dst_stride:int ->
  burst:int ->
  count:int ->
  unit
(** Copy [count] bursts of [burst] contiguous elements with independent
    source/destination strides (layout transformations). *)

val copy_out :
  Block.t ->
  engine:Engine.t ->
  src:Local_tensor.t ->
  ?src_off:int ->
  dst:Global_tensor.t ->
  ?dst_off:int ->
  len:int ->
  unit ->
  unit
(** Copy [len] elements local -> GM. *)

val copy_out_strided :
  Block.t ->
  engine:Engine.t ->
  src:Local_tensor.t ->
  src_off:int ->
  src_stride:int ->
  dst:Global_tensor.t ->
  dst_off:int ->
  dst_stride:int ->
  burst:int ->
  count:int ->
  unit

val copy_local :
  Block.t ->
  engine:Engine.t ->
  src:Local_tensor.t ->
  ?src_off:int ->
  dst:Local_tensor.t ->
  ?dst_off:int ->
  len:int ->
  unit ->
  unit
(** On-chip copy (UB <-> UB, L1 <-> L0x, L0C -> L1...). Copying a whole
    structured tensor onto a whole destination preserves the structure
    tag. *)
