(** Kernel launch and multi-block scheduling.

    A launch executes one or more {e phases}. Within a phase, [blocks]
    block bodies run in parallel across the device's AI cores (blocks
    beyond the core count are scheduled round-robin, so a core's time is
    the sum of its blocks). Consecutive phases are separated by a
    [SyncAll] global barrier, matching Algorithm 3's structure.

    Phase time is [max(compute, traffic / effective_bandwidth)] where
    compute is the slowest core's critical path and the effective
    bandwidth is the L2 figure when the phase's distinct global-tensor
    footprint fits in L2, the HBM figure otherwise. The launch adds the
    host-side kernel-launch latency once. *)

val run_phases :
  ?name:string -> Device.t -> blocks:int -> (Block.t -> unit) list -> Stats.t
(** Raises [Invalid_argument] when [blocks < 1] or the phase list is
    empty. *)

val run : ?name:string -> Device.t -> blocks:int -> (Block.t -> unit) -> Stats.t
(** Single-phase convenience wrapper. *)
