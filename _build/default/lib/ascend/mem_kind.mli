(** The local scratchpad memories of one simulated AI core.

    The cube core owns the hierarchical L1 / L0A / L0B / L0C buffers;
    each vector core owns one Unified Buffer (UB). Sizes follow the
    910B DaVinci architecture description. *)

type t =
  | Ub of int  (** Unified Buffer of vector core [i]. *)
  | L1  (** Cube-core staging buffer. *)
  | L0a  (** Left matrix operand buffer. *)
  | L0b  (** Right matrix operand buffer. *)
  | L0c  (** Accumulator / output buffer (fp32 or int32). *)

val capacity_bytes : t -> int

val owner : vec_per_core:int -> t -> Engine.t
(** Compute engine co-located with the memory: [Vec i] for [Ub i],
    [Cube] for the L1/L0 hierarchy. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
