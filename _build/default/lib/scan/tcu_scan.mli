(** Recursive matmul-only scan in the spirit of the TCU-model algorithm
    of Zouzias & McColl (Euro-Par 2023) — an extension beyond the
    paper's implemented kernels (its Section 2.2 discusses why the
    original strided formulation maps poorly to real memory systems;
    this variant trades the strided accesses for one extra pass).

    Structure (Scan-Scan-Add with logarithmic recursion depth):

    + every [s^2]-tile receives a tile-local ScanUL1 evaluation of
      Equation 1, in parallel across all AI cores; the last value of
      each tile is also extracted into a carry array [t];
    + [t] (one element per tile, i.e. [n / s^2] elements) is scanned by
      a recursive invocation;
    + the scanned carries are broadcast-added to the tiles, in parallel.

    The recursion depth is [ceil (log_{s^2} n)], so the span is
    logarithmic in the input length, at the price of SSA-level global
    traffic (about [4N] elements versus MCScan's effective [2.5N]). *)

val run :
  ?s:int ->
  Ascend.Device.t ->
  Ascend.Global_tensor.t ->
  Ascend.Global_tensor.t * Ascend.Stats.t
(** Default [s = 128]. Input must be [F16]; output is [F16]. *)
