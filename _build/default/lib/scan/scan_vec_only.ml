open Ascend

let run ?(rows = 128) ?(cols = 128) device x =
  let n = Global_tensor.length x in
  let dt = Global_tensor.dtype x in
  (match dt with
  | Dtype.F16 | Dtype.F32 -> ()
  | d ->
      invalid_arg
        (Printf.sprintf "Scan_vec_only.run: unsupported input dtype %s"
           (Dtype.to_string d)));
  let y = Device.alloc device dt n ~name:(Global_tensor.name x ^ "_cumsum") in
  let tile = rows * cols in
  let ntiles = (n + tile - 1) / tile in
  let body ctx =
    let ub_in = Block.alloc ctx (Mem_kind.Ub 0) dt tile in
    let ub_out = Block.alloc ctx (Mem_kind.Ub 0) dt tile in
    let partial = ref 0.0 in
    Block.pipelined ctx ~iters:(max 1 ntiles) (fun () ->
        for t = 0 to ntiles - 1 do
          let off = t * tile in
          let len = min tile (n - off) in
          let trows = (len + cols - 1) / cols in
          Mte.copy_in ctx ~engine:(Engine.Vec_mte_in 0) ~src:x ~src_off:off
            ~dst:ub_in ~len ();
          Vec.cumsum ctx ~src:ub_in ~dst:ub_out ~rows:trows ~cols ();
          Vec.adds ctx ~src:ub_out ~dst:ub_out ~scalar:!partial ~len ();
          partial := Vec.get ctx ub_out (len - 1);
          Mte.copy_out ctx ~engine:(Engine.Vec_mte_out 0) ~src:ub_out ~dst:y
            ~dst_off:off ~len ()
        done)
  in
  let stats = Launch.run ~name:"cumsum_vec_only" device ~blocks:1 body in
  (y, stats)
