type algo = Vec_only | U | Ul1 | Mc | Tcu

let algo_to_string = function
  | Vec_only -> "vec_only"
  | U -> "scanu"
  | Ul1 -> "scanul1"
  | Mc -> "mcscan"
  | Tcu -> "tcu"

let algo_of_string = function
  | "vec_only" | "cumsum" -> Some Vec_only
  | "scanu" | "u" -> Some U
  | "scanul1" | "ul1" -> Some Ul1
  | "mcscan" | "mc" -> Some Mc
  | "tcu" -> Some Tcu
  | _ -> None

let all_algos = [ Vec_only; U; Ul1; Mc; Tcu ]

let run ?s ?(exclusive = false) ~algo device x =
  match algo, exclusive with
  | Mc, _ -> Mcscan.run ?s ~exclusive device x
  | (Vec_only | U | Ul1 | Tcu), true ->
      invalid_arg
        (Printf.sprintf "Scan_api.run: %s does not support exclusive scans"
           (algo_to_string algo))
  | Vec_only, false -> Scan_vec_only.run device x
  | U, false -> Scan_u.run ?s device x
  | Ul1, false -> Scan_ul1.run ?s device x
  | Tcu, false -> Tcu_scan.run ?s device x

let check_against_reference ?(round = Fun.id) ?(exclusive = false) ~input
    ~output () =
  let expected =
    if exclusive then Reference.exclusive_scan ~round input
    else Reference.inclusive_scan ~round input
  in
  let n = Array.length input in
  if Ascend.Global_tensor.length output <> n then
    Error
      (Printf.sprintf "length mismatch: expected %d, got %d" n
         (Ascend.Global_tensor.length output))
  else begin
    let bad = ref None in
    for i = n - 1 downto 0 do
      let got = Ascend.Global_tensor.get output i in
      if got <> expected.(i) then bad := Some (i, expected.(i), got)
    done;
    match !bad with
    | None -> Ok ()
    | Some (i, want, got) ->
        Error (Printf.sprintf "index %d: expected %g, got %g" i want got)
  end
