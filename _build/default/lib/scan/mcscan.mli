(** MCScan (Algorithm 3): multi-core scan for large 1-D arrays.

    The input is partitioned into per-AI-core blocks; two phases are
    separated by a [SyncAll] barrier:

    + {b Phase I} — on every block in parallel, the cube unit computes
      the tile-local scans of all [s]-rows ([A @ U]) and streams them to
      a temporary in global memory, while {e at the same time} the
      block's vector cores re-read the raw input and reduce it to one
      sum per vector sub-block, written to the reduction array [r].
      This partial {e recomputation} of the reductions on both unit
      types (instead of deriving them from the local scans) is the
      distinguishing feature of the algorithm: it keeps cube and vector
      units fully busy in parallel with no intra-phase dependency.
    + {b Phase II} — every vector core loads [r], computes the prefix
      of its predecessors in its scratchpad, and propagates it through
      the tile-local scans row by row while writing the final output.

    Data types: [F16] input produces [F16] output ([F16] local scans);
    [I8] input produces [I32] output with the tile-local scans stored as
    [I16] (an [s]-row of int8 sums is bounded by [s * 127 <= 16256], so
    16 bits always suffice), halving the intermediate traffic — the key
    to the int8 throughput advantage of Figure 9.

    In cost-only device mode the kernel has no data-dependent control
    flow, so it models arbitrarily large inputs exactly. *)

val run :
  ?s:int ->
  ?blocks:int ->
  ?exclusive:bool ->
  Ascend.Device.t ->
  Ascend.Global_tensor.t ->
  Ascend.Global_tensor.t * Ascend.Stats.t
(** Defaults: [s = 128], [blocks] = the device's AI-core count,
    [exclusive = false]. Input must be [F16] or [I8]. *)
