(** Vector-only scan baseline: the CumSum AscendC API.

    Runs on a single vector core, scanning the input through
    [rows x cols] UB tiles with the composite CumSum instruction and
    propagating the running partial between tiles. This is the
    [vec_only] baseline of Figure 3 (configured, like the paper, with
    CumSumInfo parameters 128 and 128), and the stand-in for the
    unoptimised [torch.cumsum] baseline elsewhere. *)

val run :
  ?rows:int ->
  ?cols:int ->
  Ascend.Device.t ->
  Ascend.Global_tensor.t ->
  Ascend.Global_tensor.t * Ascend.Stats.t
(** Defaults: [rows = 128], [cols = 128]. Input must be [F16] or [F32];
    the output has the same data type. *)
