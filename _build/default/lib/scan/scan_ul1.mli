(** ScanUL1 (Algorithm 2): single-cube scan via Equation 1.

    For each tile [z] of length [s^2], viewed as the [s x s] row-major
    matrix [A], the cube unit evaluates

    {[ scan(z) = A @ U_s + L_s^- @ A @ 1_s ]}

    as the sequence [C1 = A @ 1], [C2 = A @ U], [C2 += L^- @ C1]: the
    first two multiplications share the left operand [A] in L0A, and the
    third uses the cube accumulation buffer, so each input element is
    loaded into the cube core exactly once. A single vector core then
    only adds one scalar (the previous tile's last value) per whole
    tile, an [s]-fold reduction of vector work compared to ScanU. *)

val run :
  ?s:int ->
  Ascend.Device.t ->
  Ascend.Global_tensor.t ->
  Ascend.Global_tensor.t * Ascend.Stats.t
(** Default [s = 128]. Input must be [F16]; output is [F16]. *)

(** {2 Building blocks} (reused by the batched kernel) *)

type bufs
(** The per-block cube-side buffer set: L0A/L0B operands, two L0C
    accumulators, and the U / L^- / 1 constants plus a C1 staging area
    in L1. *)

val alloc_bufs : Ascend.Block.t -> s:int -> bufs

val cube_tile :
  Ascend.Block.t ->
  x:Ascend.Global_tensor.t ->
  y:Ascend.Global_tensor.t ->
  off:int ->
  len:int ->
  s:int ->
  bufs:bufs ->
  unit
(** Evaluate Equation 1 for one tile [x\[off, off+len)], writing the
    tile-local scan to [y\[off, off+len)]. *)
