(** Sum reduction on the cube units (matmul-only, after Dakkak et al.'s
    tensor-core reduction and the paper's Section 2.2 lineage).

    Each block accumulates [C += A_t @ 1_s] over its tiles directly in
    the L0C accumulation buffer, so column 0 of [C] ends up holding the
    per-row-position totals; one final [1_{1 x s} @ C] matmul collapses
    them into the block sum, which a single vector core then combines
    across blocks. The input is read exactly once and the vector cores
    stay almost idle — the complementary resource profile to the
    vector reduction ({!run_vec}). *)

val run_cube :
  ?s:int ->
  Ascend.Device.t ->
  Ascend.Global_tensor.t ->
  float * Ascend.Global_tensor.t * Ascend.Stats.t
(** Returns (host value, 1-element [F32] tensor, stats). Input must be
    [F16]; default [s = 128]. The host value is 0 in cost-only mode. *)

val run_vec :
  Ascend.Device.t ->
  Ascend.Global_tensor.t ->
  float * Ascend.Global_tensor.t * Ascend.Stats.t
(** The conventional vector-core streaming reduction, for comparison. *)
