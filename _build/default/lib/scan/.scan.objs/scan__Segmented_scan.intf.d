lib/scan/segmented_scan.mli: Ascend
