lib/scan/scan_ul1.ml: Ascend Block Const_mat Cube Device Dtype Engine Global_tensor Kernel_util Launch Local_tensor Mem_kind Mte Vec
