lib/scan/mcscan.ml: Ascend Block Const_mat Cost_model Device Dtype Engine Global_tensor Kernel_util Launch List Mem_kind Mte Printf Vec
