lib/scan/batched_scan.mli: Ascend
