lib/scan/scan_api.mli: Ascend
