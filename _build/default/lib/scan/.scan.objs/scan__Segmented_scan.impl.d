lib/scan/segmented_scan.ml: Ascend Block Cost_model Device Dtype Engine Fp16 Global_tensor Kernel_util Launch List Local_tensor Mem_kind Mte Vec
