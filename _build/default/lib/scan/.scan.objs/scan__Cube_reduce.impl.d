lib/scan/cube_reduce.ml: Ascend Block Const_mat Cost_model Cube Device Dtype Engine Global_tensor Kernel_util Launch List Local_tensor Mem_kind Mte Vec
