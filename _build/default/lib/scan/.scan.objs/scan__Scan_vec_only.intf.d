lib/scan/scan_vec_only.mli: Ascend
