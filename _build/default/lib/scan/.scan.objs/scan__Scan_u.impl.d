lib/scan/scan_u.ml: Ascend Block Const_mat Device Dtype Engine Global_tensor Kernel_util Launch Mem_kind Mte
