lib/scan/reference.mli:
