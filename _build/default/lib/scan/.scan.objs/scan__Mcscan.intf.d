lib/scan/mcscan.mli: Ascend
