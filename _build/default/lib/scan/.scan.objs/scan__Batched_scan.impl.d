lib/scan/batched_scan.ml: Array Ascend Block Const_mat Cost_model Device Dtype Engine Fun Global_tensor Kernel_util Launch List Mem_kind Mte Scan_ul1 Vec
