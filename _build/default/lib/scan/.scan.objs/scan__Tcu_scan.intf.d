lib/scan/tcu_scan.mli: Ascend
