lib/scan/const_mat.mli: Ascend
