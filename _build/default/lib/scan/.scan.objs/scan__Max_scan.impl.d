lib/scan/max_scan.ml: Ascend Block Cost_model Device Dtype Engine Float Global_tensor Kernel_util Launch List Mem_kind Mte Printf Vec
