lib/scan/reference.ml: Array Float Fun Stdlib
