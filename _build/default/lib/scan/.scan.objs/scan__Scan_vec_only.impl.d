lib/scan/scan_vec_only.ml: Ascend Block Device Dtype Engine Global_tensor Launch Mem_kind Mte Printf Vec
