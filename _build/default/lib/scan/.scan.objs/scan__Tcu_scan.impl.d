lib/scan/tcu_scan.ml: Ascend Block Cost_model Device Dtype Engine Fun Global_tensor Kernel_util Launch List Mem_kind Mte Printf Scan_ul1 Stats Vec
