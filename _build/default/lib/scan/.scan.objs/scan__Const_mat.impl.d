lib/scan/const_mat.ml: Ascend Block Cost_model Dtype Local_tensor
