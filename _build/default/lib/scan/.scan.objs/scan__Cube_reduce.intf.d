lib/scan/cube_reduce.mli: Ascend
