lib/scan/kernel_util.ml: Ascend Cube Engine Mte Vec
