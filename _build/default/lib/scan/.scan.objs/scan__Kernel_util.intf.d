lib/scan/kernel_util.mli: Ascend
