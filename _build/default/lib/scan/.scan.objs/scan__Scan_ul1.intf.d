lib/scan/scan_ul1.mli: Ascend
