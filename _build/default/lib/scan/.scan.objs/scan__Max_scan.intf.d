lib/scan/max_scan.mli: Ascend
