lib/scan/scan_u.mli: Ascend
