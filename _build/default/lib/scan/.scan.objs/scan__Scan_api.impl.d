lib/scan/scan_api.ml: Array Ascend Fun Mcscan Printf Reference Scan_u Scan_ul1 Scan_vec_only Tcu_scan
