(** Unified front end over the scan kernels. *)

type algo =
  | Vec_only  (** CumSum baseline ({!Scan_vec_only}). *)
  | U  (** Algorithm 1 ({!Scan_u}). *)
  | Ul1  (** Algorithm 2 ({!Scan_ul1}). *)
  | Mc  (** Algorithm 3 ({!Mcscan}). *)
  | Tcu  (** Recursive matmul-only extension ({!Tcu_scan}). *)

val algo_of_string : string -> algo option
val algo_to_string : algo -> string
val all_algos : algo list

val run :
  ?s:int ->
  ?exclusive:bool ->
  algo:algo ->
  Ascend.Device.t ->
  Ascend.Global_tensor.t ->
  Ascend.Global_tensor.t * Ascend.Stats.t
(** Dispatch to the selected kernel. [exclusive] is only supported by
    [Mc]; requesting it elsewhere raises [Invalid_argument]. *)

val check_against_reference :
  ?round:(float -> float) ->
  ?exclusive:bool ->
  input:float array ->
  output:Ascend.Global_tensor.t ->
  unit ->
  (unit, string) result
(** Compare a kernel output against {!Reference}; the error carries the
    first mismatching index and values. *)
