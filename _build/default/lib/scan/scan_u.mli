(** ScanU (Algorithm 1): single-cube scan via [A @ U].

    Views each consecutive tile of length [s^2] of the input as an
    [s x s] row-major matrix [A]; one Mmad against the upper-triangular
    ones matrix [U_s] computes [s] consecutive local scans of size [s].
    The result streams through global memory to a vector core that adds
    the running partial to each [s]-row and tracks the last entry
    (pipelined over tiles).

    The critical path is linear in the input length (sequential partial
    dependency), so this kernel targets short-to-medium inputs and is
    the building block of the batched and multi-core variants. *)

val run :
  ?s:int ->
  ?no_pipeline:bool ->
  Ascend.Device.t ->
  Ascend.Global_tensor.t ->
  Ascend.Global_tensor.t * Ascend.Stats.t
(** Default [s = 128]. Input must be [F16]; output is [F16].
    [no_pipeline:true] disables the software pipelining of the tile
    loop (the double-buffering ablation of DESIGN.md, bench A2). *)
