(** The constant matrices of the matmul-scan identities.

    [U_s] (upper-triangular ones), [L_s] (lower-triangular ones),
    [L_s^-] (strictly lower-triangular ones) and [1_s] (all ones) are
    the right/left operands of Equation 1:

    {[ scan(z) = A @ U + L^- @ A @ 1 ]}

    On the real device these are statically pre-allocated in global
    memory and DataCopied into the cube hierarchy once per kernel; the
    load is charged accordingly. The returned tensor carries the
    matching structure tag so the simulator can evaluate products
    against it in O(s^2). *)

type which = Upper | Lower | Strict_lower | Ones | Ident

val load :
  Ascend.Block.t ->
  engine:Ascend.Engine.t ->
  kind:Ascend.Mem_kind.t ->
  dtype:Ascend.Dtype.t ->
  s:int ->
  which ->
  Ascend.Local_tensor.t
(** Allocate an [s x s] local tensor in [kind], charge the MTE load, and
    (in functional mode) fill the pattern. *)

val fill : Ascend.Local_tensor.t -> s:int -> which -> unit
(** Host-side pattern fill with structure tagging (no cost); exposed for
    tests. *)

val expected : s:int -> which -> i:int -> j:int -> float
(** The (i, j) entry of the pattern; exposed for tests. *)
