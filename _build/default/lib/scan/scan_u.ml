open Ascend

let run ?(s = 128) ?(no_pipeline = false) device x =
  if s <= 0 then invalid_arg "Scan_u.run: s must be positive";
  if not (Dtype.equal (Global_tensor.dtype x) Dtype.F16) then
    invalid_arg "Scan_u.run: input must be f16";
  let n = Global_tensor.length x in
  let y = Device.alloc device Dtype.F16 n ~name:(Global_tensor.name x ^ "_scanu") in
  let tile = s * s in
  let ntiles = Kernel_util.ceil_div n tile in
  let body ctx =
    let l0a = Block.alloc ctx Mem_kind.L0a Dtype.F16 tile in
    let l0c = Block.alloc ctx Mem_kind.L0c Dtype.F32 tile in
    let ub = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 tile in
    let u =
      Const_mat.load ctx ~engine:Engine.Cube_mte_in ~kind:Mem_kind.L0b
        ~dtype:Dtype.F16 ~s Const_mat.Upper
    in
    let partial = ref 0.0 in
    (* no_pipeline is the A2 ablation hook: iters = 1 makes the
       section time the serial sum of all engine work. *)
    Block.pipelined ctx ~iters:(if no_pipeline then 1 else max 1 ntiles) (fun () ->
        for t = 0 to ntiles - 1 do
          let off = t * tile in
          let len = min tile (n - off) in
          Kernel_util.cube_local_scans ctx ~x ~off ~len ~s ~l0a ~u ~l0c ~y;
          (* The vector core waits for the cube result in GM, finishes
             the prefix in place, and writes it back. *)
          Mte.copy_in ctx ~engine:(Engine.Vec_mte_in 0) ~src:y ~src_off:off
            ~dst:ub ~len ();
          Kernel_util.propagate_rows ctx ~vec:0 ~ub ~len ~s ~partial;
          Mte.copy_out ctx ~engine:(Engine.Vec_mte_out 0) ~src:ub ~dst:y
            ~dst_off:off ~len ()
        done)
  in
  let stats = Launch.run ~name:"scan_u" device ~blocks:1 body in
  (y, stats)
