(** Multi-core segmented scan: independent prefix sums over segments
    delimited by an int8 start-flag array.

    [y.(i)] is the sum of [x.(j)] for all [j <= i] belonging to the
    same segment as [i]; a new segment starts wherever [flags.(j) <> 0]
    (position 0 always starts a segment). This is the classic ragged /
    variable-length-batch primitive (Blelloch 1990, section 1.5) and an
    extension over the paper's kernels.

    The segmented combine [(v2,f2) . (v1,f1)] is not a matrix product,
    so the in-tile scans run on the vector cores as a log-step network
    over (value, flag) pairs ({!Kernel_util.segmented_hillis_steele_tile});
    across tiles and blocks the kernel keeps MCScan's two-phase
    recomputation structure, with per-sub-block carries (end value, had
    boundary) in place of plain sums. *)

val run :
  ?blocks:int ->
  Ascend.Device.t ->
  x:Ascend.Global_tensor.t ->
  flags:Ascend.Global_tensor.t ->
  unit ->
  Ascend.Global_tensor.t * Ascend.Stats.t
(** [x] must be [F16], [flags] an [I8] 0/1 array of the same length;
    the output is [F16]. *)
