lib/workload/table.mli:
