lib/workload/table.ml: Buffer Char Filename List Printf String Sys
