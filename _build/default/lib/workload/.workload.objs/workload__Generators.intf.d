lib/workload/generators.mli:
