lib/workload/metrics.ml: Ascend
