lib/workload/generators.ml: Array Ascend Float Fun Random Stdlib
