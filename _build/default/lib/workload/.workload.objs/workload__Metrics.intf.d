lib/workload/metrics.mli: Ascend
