(** Minimal fixed-width table / series rendering for the benchmark
    harness (each figure of the paper becomes one printed table). *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** Rows are rendered in insertion order; short rows are padded. *)

val print : t -> unit
(** Render to stdout with aligned columns and a title rule. *)

val save_csv : t -> dir:string -> unit
(** Write the table as [<dir>/<slug-of-title>.csv] (creating [dir]),
    header row first. *)

val fmt_time_us : float -> string
(** Seconds to a fixed-width microseconds cell. *)

val fmt_gbs : float -> string
(** Bytes/s to a GB/s cell. *)

val fmt_float : ?digits:int -> float -> string
val fmt_int : int -> string
