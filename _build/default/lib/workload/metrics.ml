let scan_bandwidth (st : Ascend.Stats.t) ~n ~esize =
  float_of_int (2 * n * esize) /. st.Ascend.Stats.seconds

let giga_elements_per_second (st : Ascend.Stats.t) ~n =
  float_of_int n /. st.Ascend.Stats.seconds /. 1e9

let speedup ~baseline (st : Ascend.Stats.t) =
  baseline.Ascend.Stats.seconds /. st.Ascend.Stats.seconds

let gb b = b /. 1e9

let percent_of_peak ?(peak = 800.0e9) b = 100.0 *. b /. peak
