(** Deterministic workload generators for tests, examples and benches.

    All generators take an explicit seed so every experiment is
    reproducible; values destined for [F16] tensors are pre-rounded to
    representable fp16 values. *)

val uniform_f16 : seed:int -> ?lo:float -> ?hi:float -> int -> float array
(** [n] fp16-representable values uniform in [\[lo, hi)] (default
    [\[-1, 1)]). *)

val ones_and_zeros : seed:int -> density:float -> int -> float array
(** 0/1 mask with i.i.d. true probability [density]. *)

val small_ints : seed:int -> ?max_value:int -> int -> float array
(** Non-negative integers in [\[0, max_value\]] (default 9); keeps fp16
    cumulative sums exact for short arrays. *)

val alternating : int -> float array
(** Deterministic 1, 0, 1, 0, ... pattern (exact fp16 scans as long as
    the total stays below 2049). *)

val softmax_probs : seed:int -> ?temperature:float -> int -> float array
(** A peaked LLM-style token distribution: softmax of [n] uniform
    logits in [0, 8\] divided by [temperature] (default 1.0), rounded
    to fp16. *)

val zipf_weights : seed:int -> ?exponent:float -> int -> float array
(** Zipf-like weights [1 / (rank+1)^exponent] (default 1.1) in a random
    permutation, rounded to fp16. *)

val permutation : seed:int -> int -> int array
(** A uniformly random permutation of [0 .. n-1] (Fisher-Yates). *)
