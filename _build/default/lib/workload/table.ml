type t = {
  title : string;
  columns : string list;
  mutable rows : string list list;
}

let create ~title ~columns = { title; columns; rows = [] }
let add_row t row = t.rows <- row :: t.rows

let print t =
  let rows = List.rev t.rows in
  let ncols = List.length t.columns in
  let pad row =
    let m = List.length row in
    if m >= ncols then row else row @ List.init (ncols - m) (fun _ -> "")
  in
  let rows = List.map pad rows in
  let widths =
    List.mapi
      (fun i c ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length c) rows)
      t.columns
  in
  let line ch =
    print_endline
      (String.concat "-+-" (List.map (fun w -> String.make w ch) widths))
  in
  let render row =
    print_endline
      (String.concat " | "
         (List.map2
            (fun w cell -> cell ^ String.make (w - String.length cell) ' ')
            widths row))
  in
  Printf.printf "\n== %s ==\n" t.title;
  render t.columns;
  line '-';
  List.iter render rows

let fmt_time_us s = Printf.sprintf "%.1f" (s *. 1e6)
let fmt_gbs b = Printf.sprintf "%.1f" (b /. 1e9)
let fmt_float ?(digits = 2) v = Printf.sprintf "%.*f" digits v
let fmt_int = string_of_int

let slug title =
  let b = Buffer.create (String.length title) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Buffer.add_char b (Char.lowercase_ascii c)
      | ' ' | '-' | '_' | '/' | ':' | '.' ->
          if Buffer.length b > 0 && Buffer.nth b (Buffer.length b - 1) <> '_'
          then Buffer.add_char b '_'
      | _ -> ())
    title;
  let s = Buffer.contents b in
  let s = if String.length s > 60 then String.sub s 0 60 else s in
  if s = "" then "table" else s

let csv_cell cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let save_csv t ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (slug t.title ^ ".csv") in
  let oc = open_out path in
  let row r = output_string oc (String.concat "," (List.map csv_cell r) ^ "\n") in
  row t.columns;
  List.iter row (List.rev t.rows);
  close_out oc
