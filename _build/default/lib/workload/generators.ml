let uniform_f16 ~seed ?(lo = -1.0) ?(hi = 1.0) n =
  let rng = Random.State.make [| seed |] in
  Array.init n (fun _ ->
      Ascend.Fp16.round (lo +. Random.State.float rng (hi -. lo)))

let ones_and_zeros ~seed ~density n =
  if density < 0.0 || density > 1.0 then
    invalid_arg "Generators.ones_and_zeros: density out of [0, 1]";
  let rng = Random.State.make [| seed |] in
  Array.init n (fun _ ->
      if Random.State.float rng 1.0 < density then 1.0 else 0.0)

let small_ints ~seed ?(max_value = 9) n =
  if max_value < 0 then invalid_arg "Generators.small_ints: negative max";
  let rng = Random.State.make [| seed |] in
  Array.init n (fun _ -> float_of_int (Random.State.int rng (max_value + 1)))

let alternating n = Array.init n (fun i -> if i land 1 = 0 then 1.0 else 0.0)

let softmax_probs ~seed ?(temperature = 1.0) n =
  if temperature <= 0.0 then
    invalid_arg "Generators.softmax_probs: non-positive temperature";
  let rng = Random.State.make [| seed |] in
  let logits =
    Array.init n (fun _ -> Random.State.float rng 8.0 /. temperature)
  in
  let m = Array.fold_left Float.max neg_infinity logits in
  let exps = Array.map (fun v -> Stdlib.exp (v -. m)) logits in
  let z = Array.fold_left ( +. ) 0.0 exps in
  Array.map (fun e -> Ascend.Fp16.round (e /. z)) exps

let zipf_weights ~seed ?(exponent = 1.1) n =
  let rng = Random.State.make [| seed |] in
  let w =
    Array.init n (fun i ->
        Ascend.Fp16.round (1.0 /. Float.pow (float_of_int (i + 1)) exponent))
  in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = w.(i) in
    w.(i) <- w.(j);
    w.(j) <- t
  done;
  w

let permutation ~seed n =
  let rng = Random.State.make [| seed |] in
  let p = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = p.(i) in
    p.(i) <- p.(j);
    p.(j) <- t
  done;
  p
