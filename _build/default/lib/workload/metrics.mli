(** The performance metrics used by the paper's figures. *)

val scan_bandwidth : Ascend.Stats.t -> n:int -> esize:int -> float
(** Effective scan bandwidth in bytes/s: [2 * n * esize / time] —
    [n] elements read plus [n] written, regardless of the algorithm's
    internal traffic (the paper's GB/s metric). *)

val giga_elements_per_second : Ascend.Stats.t -> n:int -> float

val speedup : baseline:Ascend.Stats.t -> Ascend.Stats.t -> float
(** [baseline.seconds / this.seconds]. *)

val gb : float -> float
(** Bytes/s to GB/s (1e9). *)

val percent_of_peak : ?peak:float -> float -> float
(** Bandwidth as a percentage of the device peak (default 800 GB/s). *)
