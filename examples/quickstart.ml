(* Quickstart: create a device, scan an array with every algorithm,
   and inspect the execution statistics.

   Run with: dune exec examples/quickstart.exe *)

open Ascend

let () =
  (* A functional device computes real results and models their cost. *)
  let device = Device.create () in

  (* Upload an input array (fp16, like most AI-workload tensors). *)
  let n = 100_000 in
  (* 1-in-53 ones keep the fp16 running sum below 2048, i.e. exact. *)
  let data = Array.init n (fun i -> if i mod 53 = 0 then 1.0 else 0.0) in
  let x = Device.of_array device Dtype.F16 ~name:"input" data in

  Format.printf "Scanning %d fp16 elements on %a@.@." n Device.pp device;

  (* Run each registered scan algorithm through the unified front end.
     The checker derives each algorithm's reference from its registered
     monoid, so the running-maximum scan validates alongside the sums. *)
  List.iter
    (fun algo ->
      let y, stats = Scan.Scan_api.run ~algo device x in
      let ok =
        match
          Scan.Scan_api.check_scan ~round:Fp16.round ~algo ~dtype:Dtype.F16
            ~input:data ~output:y ()
        with
        | Ok () -> "ok"
        | Error e -> "MISMATCH: " ^ e
      in
      Format.printf "%-9s %a  [%s]@."
        (Scan.Scan_api.algo_to_string algo)
        Stats.pp_summary stats ok)
    Scan.Scan_api.all_algos;

  (* Exclusive scans and int8 masks work through MCScan. *)
  let mask =
    Device.of_array device Dtype.I8 ~name:"mask"
      (Array.init n (fun i -> if i mod 3 = 0 then 1.0 else 0.0))
  in
  let offsets, stats = Scan.Mcscan.run ~exclusive:true device mask in
  Format.printf "@.exclusive int8 scan: offsets[0]=%g offsets[%d]=%g (%a)@."
    (Global_tensor.get offsets 0) (n - 1)
    (Global_tensor.get offsets (n - 1))
    Stats.pp_summary stats;

  (* Full per-launch statistics are available too. *)
  let _, stats = Scan.Mcscan.run device x in
  Format.printf "@.%a@." Stats.pp stats
